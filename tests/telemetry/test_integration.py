"""Telemetry in the forwarding loops: observational purity and stamping.

The contract the tentpole rests on: arming telemetry changes *nothing*
about the simulation — every latency sample, port counter, and event
count is bit-identical with monitors on or off, across the reference
loop and the compiled fast path — while the monitors see every enqueue
and drop, and INT stamps fold into the flow records on delivery.
"""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import Network
from repro.sim.sources import PoissonSource
from repro.telemetry import TELEMETRY_ENV, TelemetryConfig, TelemetryHub


def run_workload(telemetry, fastpath=True, buffer_bytes=None, nsrc=4):
    topo = T.three_tier_tree()
    net = Network(
        topo,
        ECMPRouter(topo),
        fastpath=fastpath,
        telemetry=telemetry,
        buffer_bytes=buffer_bytes,
    )
    servers = topo.servers()
    sources = [
        PoissonSource(
            net, servers[i], servers[-1], rate_pps=600_000.0, seed=i,
            flow_id=i, group=f"flow-{i}",
            chunk=1 if not fastpath else 256,
        )
        for i in range(nsrc)
    ]
    for source in sources:
        source.start()
    net.engine.run(until=0.004)
    return net


def observable_state(net):
    return (
        net.packets_delivered,
        net.packets_dropped,
        net.packets_rerouted,
        tuple(net.stats.samples),
        tuple(
            (key, port.packets_sent, port.bytes_sent, port.busy_until)
            for key, port in sorted(net._ports.items())
        ),
    )


class TestObservationalPurity:
    def test_telemetry_changes_no_simulation_state(self):
        off = run_workload(telemetry=False)
        on = run_workload(telemetry=True)
        assert observable_state(off) == observable_state(on)

    def test_reference_and_fastpath_agree_on_telemetry(self):
        fast = run_workload(telemetry=True, fastpath=True)
        ref = run_workload(telemetry=True, fastpath=False)
        assert observable_state(fast) == observable_state(ref)
        assert fast.telemetry.window_dump() == ref.telemetry.window_dump()

    def test_purity_holds_under_bounded_buffers(self):
        off = run_workload(telemetry=False, buffer_bytes=1600)
        on = run_workload(telemetry=True, buffer_bytes=1600)
        assert observable_state(off) == observable_state(on)
        assert on.packets_dropped > 0, "workload should overflow the buffer"


class TestArming:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        topo = T.full_mesh(2, 1)
        assert Network(topo, ECMPRouter(topo)).telemetry is None

    def test_explicit_flag_and_config(self):
        topo = T.full_mesh(2, 1)
        assert isinstance(
            Network(topo, ECMPRouter(topo), telemetry=True).telemetry, TelemetryHub
        )
        config = TelemetryConfig(window=1e-3, stamping=False)
        net = Network(topo, ECMPRouter(topo), telemetry=config)
        assert net.telemetry.config is config

    def test_env_arms_default_networks(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        topo = T.full_mesh(2, 1)
        assert Network(topo, ECMPRouter(topo)).telemetry is not None
        # ... but an explicit False still wins over the environment.
        assert Network(topo, ECMPRouter(topo), telemetry=False).telemetry is None


class TestMonitors:
    def test_every_enqueue_observed(self):
        net = run_workload(telemetry=True)
        hub = net.telemetry
        # One enqueue per transmit hop; every port the sim forwarded
        # through is monitored and the totals tie out to port counters.
        expected = sum(p.packets_sent for p in net._ports.values())
        assert hub.total_enqueues() == expected
        for key in hub.ports():
            assert hub.monitors[key].enqueues == net._ports[key].packets_sent

    def test_buffer_drops_observed(self):
        net = run_workload(telemetry=True, buffer_bytes=1600)
        assert net.telemetry.total_drops() == net.packets_dropped

    def test_fault_severed_packets_observed_as_drops(self):
        topo = T.three_tier_tree()
        net = Network(topo, ECMPRouter(topo), telemetry=True)
        servers = topo.servers()
        source = PoissonSource(
            net, servers[0], servers[-1], rate_pps=2_000_000.0, seed=1,
            group="load",
        )
        source.start()
        probe = net.router.route(servers[0], servers[-1], 0)
        net.enable_fault_tracking()
        net.engine.schedule(0.002, lambda: net.fail_link(probe[1], probe[2]))
        net.engine.run(until=0.004)
        assert net.packets_dropped_fault > 0
        assert net.telemetry.total_drops() >= net.packets_dropped_fault


class TestStamping:
    def test_stamps_fold_into_flow_records(self):
        net = run_workload(telemetry=True, nsrc=1)
        per_node = net.stats.hop_stamps["flow-0"]
        route = net.router.route(
            net.topo.servers()[0], net.topo.servers()[-1], 0
        )
        # One stamp per transmit hop: every node on the path except the
        # destination, each having seen every delivered packet.
        assert set(per_node) == set(route[:-1])
        for rec in per_node.values():
            assert rec.packets == net.packets_delivered
            assert rec.depth_max >= 0
            assert rec.wait_sum >= 0.0
            assert rec.mean_depth <= rec.depth_max
            assert rec.mean_wait <= rec.wait_max or rec.packets == 0

    def test_waits_positive_under_contention(self):
        net = run_workload(telemetry=True, nsrc=4)
        assert any(
            rec.wait_max > 0.0
            for per_node in net.stats.hop_stamps.values()
            for rec in per_node.values()
        ), "a contended port should make some packet wait"

    def test_stamping_off_keeps_monitors_only(self):
        topo = T.three_tier_tree()
        net = Network(
            topo,
            ECMPRouter(topo),
            telemetry=TelemetryConfig(window=50e-6, stamping=False),
        )
        servers = topo.servers()
        PoissonSource(
            net, servers[0], servers[-1], rate_pps=600_000.0, seed=0,
            group="load",
        ).start()
        net.engine.run(until=0.002)
        assert net.telemetry.total_enqueues() > 0
        assert net.stats.hop_stamps == {}

    def test_stamps_consistent_with_window_waits(self):
        net = run_workload(telemetry=True, nsrc=2)
        hub = net.telemetry
        total_window_wait = sum(
            w.wait_sum for _, w in hub.iter_windows()
        )
        total_stamp_wait = sum(
            rec.wait_sum
            for per_node in net.stats.hop_stamps.values()
            for rec in per_node.values()
        )
        # Stamps only fold on *delivery*, so the stamped total is a
        # subset of what the monitors saw (packets still in flight at
        # the horizon were monitored but never folded).
        assert total_stamp_wait <= total_window_wait + 1e-12


class TestBatchStandDown:
    def test_monitors_see_cohort_workload(self):
        # batch left at default: telemetry must stand it down, and the
        # run must match the explicit batch=False run exactly.
        topo = T.three_tier_tree()
        nets = []
        for batch in (None, False):
            net = Network(topo, ECMPRouter(topo), batch=batch, telemetry=True)
            servers = topo.servers()
            PoissonSource(
                net, servers[0], servers[-1], rate_pps=600_000.0, seed=0,
                group="load", chunk=256,
            ).start()
            net.engine.run(until=0.004)
            nets.append(net)
        default, scalar = nets
        assert not default.batch_enabled
        assert observable_state(default) == observable_state(scalar)
        assert default.telemetry.window_dump() == scalar.telemetry.window_dump()


class TestUnroutable:
    def test_unroutable_counted(self):
        # Sources report unroutable offered load via note_unroutable
        # (no port to charge); the hub keeps a run-level counter.
        topo = T.full_mesh(2, 1)
        net = Network(topo, ECMPRouter(topo), telemetry=True)
        net.note_unroutable("load")
        net.note_unroutable(None)
        assert net.telemetry.unroutable == 2
        assert net.packets_unroutable == 2
