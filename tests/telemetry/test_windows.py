"""Window semantics of the per-port monitors, against hand-computed values.

The monitors promise fixed-width half-open windows ``[k·w, (k+1)·w)``
that tile time with no gaps and no overlaps, depth probes that count
exactly the packets still resident at arrival, and per-flow occupancy
integrals that decompose ``size × residency`` across window boundaries.
Every number here is small enough to check by hand.
"""

import math

import pytest

from repro.telemetry import (
    DEFAULT_WINDOW,
    TELEMETRY_ENV,
    PortMonitor,
    TelemetryConfig,
    TelemetryError,
    TelemetryHub,
    resolve_config,
    telemetry_env_enabled,
)

KEY = ("u", "v")


def monitor(width=1.0):
    return PortMonitor(KEY, width)


class TestConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.window == DEFAULT_WINDOW
        assert config.stamping is True

    def test_rejects_nonpositive_window(self):
        with pytest.raises(TelemetryError):
            TelemetryConfig(window=0.0)
        with pytest.raises(TelemetryError):
            TelemetryConfig(window=-1e-6)

    def test_resolve_passthrough_and_booleans(self):
        config = TelemetryConfig(window=1e-3, stamping=False)
        assert resolve_config(config) is config
        assert resolve_config(True) == TelemetryConfig()
        assert resolve_config(False) is None

    def test_resolve_none_follows_env(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        assert resolve_config(None) is None
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        assert resolve_config(None) == TelemetryConfig()

    def test_env_treats_empty_and_zero_as_off(self):
        assert not telemetry_env_enabled({})
        assert not telemetry_env_enabled({TELEMETRY_ENV: ""})
        assert not telemetry_env_enabled({TELEMETRY_ENV: "0"})
        assert telemetry_env_enabled({TELEMETRY_ENV: "1"})


class TestDepthAndWait:
    def test_empty_port_sees_depth_zero(self):
        mon = monitor()
        depth, wait = mon.record_enqueue("a", 100, 0.5, 0.5, 1.5)
        assert depth == 0
        assert wait == 0.0

    def test_resident_packet_counts_toward_depth(self):
        mon = monitor()
        mon.record_enqueue("a", 100, 0.5, 0.5, 1.5)
        # Arrives at 0.6 while the first packet's tail leaves at 1.5:
        # one packet ahead, and the port is busy until 1.5.
        depth, wait = mon.record_enqueue("b", 200, 0.6, 1.5, 2.0)
        assert depth == 1
        assert wait == pytest.approx(0.9)

    def test_departed_tails_drain_before_probing(self):
        mon = monitor()
        mon.record_enqueue("a", 100, 0.5, 0.5, 1.5)
        mon.record_enqueue("b", 200, 0.6, 1.5, 2.0)
        # At 1.6 the first tail (1.5) has left; only the second remains.
        depth, _ = mon.record_enqueue("c", 100, 1.6, 2.0, 2.1)
        assert depth == 1


class TestWindowTiling:
    def test_half_open_boundaries(self):
        mon = monitor()
        # An arrival exactly on a boundary lands in the *upper* window.
        mon.record_enqueue("a", 100, 1.0, 1.0, 1.2)
        (win,) = [w for w in mon.windows() if w.enqueues]
        assert win.index == 1
        assert win.start == 1.0
        assert win.end == 2.0

    def test_windows_contiguous_with_gaps_materialized(self):
        mon = monitor()
        mon.record_enqueue("a", 100, 0.5, 0.5, 0.6)
        mon.record_enqueue("b", 100, 5.5, 5.5, 5.6)  # nothing in 1..4
        wins = mon.windows()
        assert [w.index for w in wins] == [0, 1, 2, 3, 4, 5]
        for prev, cur in zip(wins, wins[1:]):
            assert cur.start == prev.end  # no overlap, no skipped time
        assert all(w.enqueues == 0 for w in wins[1:5])

    def test_counters_accumulate_in_arrival_window(self):
        mon = monitor()
        mon.record_enqueue("a", 100, 0.5, 0.5, 1.5)
        mon.record_enqueue("b", 200, 0.6, 1.5, 2.0)
        win0 = mon.windows()[0]
        assert win0.enqueues == 2
        assert win0.depth_sum == 1
        assert win0.depth_max == 1
        assert win0.mean_depth == 0.5
        assert win0.wait_sum == pytest.approx(0.9)
        assert win0.wait_max == pytest.approx(0.9)

    def test_drops_charged_to_their_window(self):
        mon = monitor()
        mon.record_drop("a", 2.5)
        assert mon.drops == 1
        (win,) = mon.windows()
        assert win.index == 2
        assert win.drops == 1
        assert win.enqueues == 0


class TestOccupancyIntegral:
    def test_residency_split_across_windows(self):
        mon = monitor()
        # 100 B resident [0.5, 1.5): 50 B·s in window 0, 50 in window 1.
        mon.record_enqueue("a", 100, 0.5, 0.5, 1.5)
        win0, win1 = mon.windows()
        assert win0.occupancy_by_flow == {"a": pytest.approx(50.0)}
        assert win1.occupancy_by_flow == {"a": pytest.approx(50.0)}
        assert mon.occupancy == pytest.approx(100.0)

    def test_per_flow_decomposition(self):
        mon = monitor()
        mon.record_enqueue("a", 100, 0.5, 0.5, 1.5)
        # 200 B resident [0.6, 2.0): 80 in window 0, 200 in window 1.
        mon.record_enqueue("b", 200, 0.6, 1.5, 2.0)
        win0, win1 = mon.windows()
        assert win0.occupancy_by_flow["b"] == pytest.approx(80.0)
        assert win1.occupancy_by_flow["b"] == pytest.approx(200.0)
        assert win1.occupancy == pytest.approx(250.0)

    def test_integrals_never_negative(self):
        mon = monitor(width=0.3)
        for i in range(40):
            arrival = 0.05 * i
            mon.record_enqueue("f", 73, arrival, arrival + 0.01, arrival + 0.11)
        for win in mon.windows():
            for value in win.occupancy_by_flow.values():
                assert value >= 0.0

    def test_ungrouped_flows_share_a_label(self):
        mon = monitor()
        mon.record_enqueue(None, 100, 0.1, 0.1, 0.2)
        (win,) = mon.windows()
        assert list(win.occupancy_by_flow) == ["<ungrouped>"]

    def test_peak_window_prefers_largest_then_earliest(self):
        mon = monitor()
        mon.record_enqueue("a", 100, 0.2, 0.2, 0.4)  # 20 B·s in window 0
        mon.record_enqueue("a", 400, 1.2, 1.2, 1.4)  # 80 B·s in window 1
        assert mon.peak_window.index == 1


class TestHub:
    def test_monitors_created_lazily(self):
        hub = TelemetryHub(TelemetryConfig(window=1.0))
        assert hub.ports() == []
        hub.on_enqueue(KEY, "a", 100, 0.5, 0.5, 1.5)
        assert hub.ports() == [KEY]
        assert hub.total_enqueues() == 1

    def test_window_dump_shape(self):
        hub = TelemetryHub(TelemetryConfig(window=1.0))
        hub.on_enqueue(KEY, "a", 100, 0.5, 0.5, 1.5)
        hub.on_drop(KEY, "b", 0.7)
        hub.on_unroutable()
        dump = hub.window_dump()
        assert dump["window_width"] == 1.0
        assert dump["unroutable"] == 1
        port = dump["ports"]["u->v"]
        assert port["enqueues"] == 1
        assert port["drops"] == 1
        assert [w["index"] for w in port["windows"]] == [0, 1]
        # JSON-friendly: plain dicts/lists/floats all the way down.
        import json

        assert json.loads(json.dumps(dump)) == dump

    def test_iter_windows_sorted(self):
        hub = TelemetryHub(TelemetryConfig(window=1.0))
        hub.on_enqueue(("b", "c"), "x", 10, 0.1, 0.1, 0.2)
        hub.on_enqueue(("a", "b"), "x", 10, 0.1, 0.1, 0.2)
        keys = [key for key, _ in hub.iter_windows()]
        assert keys == sorted(keys)


class TestNumericalEdges:
    def test_boundary_tail_excluded_from_depth(self):
        mon = monitor()
        mon.record_enqueue("a", 100, 0.0, 0.0, 1.0)
        # tail_out == arrival: the earlier packet's tail has left.
        depth, _ = mon.record_enqueue("b", 100, 1.0, 1.0, 2.0)
        assert depth == 0

    def test_zero_length_residency_contributes_nothing(self):
        mon = monitor()
        mon.record_enqueue("a", 100, 0.5, 0.5, 0.5 + 1e-300)
        total = math.fsum(
            v for w in mon.windows() for v in w.occupancy_by_flow.values()
        )
        assert total >= 0.0
