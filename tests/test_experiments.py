"""Integration tests for the experiment runners (small, fast instances)."""

import pytest

from repro.experiments import (
    TOPOLOGY_BUILDERS,
    figure10_sweep,
    figure17_sweep,
    figure18_sweep,
    figure20_sweep,
    format_figure10,
    format_figure20,
    format_sweep,
    run_pathological,
    run_task_experiment,
)
from repro.units import GBPS


class TestTopologyRoster:
    def test_all_six_architectures_build(self):
        for name, build in TOPOLOGY_BUILDERS.items():
            topo = build()
            topo.validate()
            assert len(topo.servers()) == 64, name

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            run_task_experiment("hypercube", "scatter", 1)

    def test_zero_tasks_rejected(self):
        with pytest.raises(ValueError):
            run_task_experiment("jellyfish", "scatter", 0)


class TestTaskExperiment:
    def test_small_scatter_runs(self):
        result = run_task_experiment(
            "quartz in edge and core", "scatter", 2, fan=4, duration=0.002
        )
        assert result.summary.count > 10
        assert result.mean_latency > 0
        assert result.measured_group == "all tasks"

    def test_localized_measures_only_local_task(self):
        result = run_task_experiment(
            "three-tier tree", "scatter", 3, fan=4, duration=0.002, localized=True
        )
        assert result.measured_group == "local task"

    def test_quartz_core_beats_tree(self):
        tree = run_task_experiment("three-tier tree", "scatter", 1, fan=4,
                                   duration=0.002)
        quartz = run_task_experiment("quartz in core", "scatter", 1, fan=4,
                                     duration=0.002)
        # The CCS core hop dominates the tree's latency.
        assert tree.mean_latency - quartz.mean_latency > 2e-6

    def test_deterministic_for_seed(self):
        a = run_task_experiment("jellyfish", "gather", 2, fan=3, duration=0.002, seed=5)
        b = run_task_experiment("jellyfish", "gather", 2, fan=3, duration=0.002, seed=5)
        assert a.mean_latency == b.mean_latency


class TestSweeps:
    def test_figure17_sweep_shape(self):
        series = figure17_sweep(
            ["three-tier tree", "quartz in edge and core"],
            "scatter",
            [1, 2],
            fan=4,
            duration=0.002,
        )
        assert set(series) == {"three-tier tree", "quartz in edge and core"}
        assert [p.num_tasks for p in series["three-tier tree"]] == [1, 2]
        text = format_sweep(series, "test")
        assert "three-tier tree" in text

    def test_figure18_sweep_averages_seeds(self):
        series = figure18_sweep(
            ["jellyfish"], "scatter", [1], seeds=(0, 1), fan=4, duration=0.002
        )
        point = series["jellyfish"][0]
        assert len(point.per_seed) == 2
        assert point.mean_latency == pytest.approx(sum(point.per_seed) / 2)


class TestPathological:
    def test_ecmp_saturates_vlb_does_not(self):
        ecmp = run_pathological("quartz-ecmp", 50 * GBPS, duration=0.002)
        vlb = run_pathological("quartz-vlb", 50 * GBPS, duration=0.002)
        assert ecmp.saturated
        assert not vlb.saturated
        assert ecmp.mean_latency > 5 * vlb.mean_latency

    def test_nonblocking_pays_core_latency(self):
        core = run_pathological("nonblocking", 10 * GBPS, duration=0.002)
        quartz = run_pathological("quartz-ecmp", 10 * GBPS, duration=0.002)
        assert core.mean_latency > quartz.mean_latency + 4e-6

    def test_unknown_fabric_rejected(self):
        with pytest.raises(ValueError):
            run_pathological("torus", 10 * GBPS)

    def test_figure20_format(self):
        results = figure20_sweep([10], duration=0.001)
        text = format_figure20(results)
        assert "quartz-vlb" in text
        assert "10G" in text


class TestBisection:
    @pytest.fixture(scope="class")
    def results(self):
        return figure10_sweep(num_racks=5, servers_per_rack=4)

    def test_grid_complete(self, results):
        assert len(results) == 15  # 5 fabrics × 3 patterns

    def test_jellyfish_present(self, results):
        by_key = {(r.fabric, r.pattern): r.normalized_throughput for r in results}
        for pattern in ("random permutation", "incast", "rack level shuffle"):
            assert 0.0 < by_key[("jellyfish", pattern)] <= 1.0

    def test_quartz_between_full_and_half(self, results):
        by_key = {(r.fabric, r.pattern): r.normalized_throughput for r in results}
        for pattern in ("random permutation", "incast", "rack level shuffle"):
            assert by_key[("quartz", pattern)] > by_key[("1/2 bisection", pattern)]

    def test_format(self, results):
        text = format_figure10(results)
        assert "full bisection" in text
