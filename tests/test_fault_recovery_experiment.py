"""Integration tests for the fault-recovery experiment (small instances)."""

import pytest

from repro.experiments import (
    fault_recovery_sweep,
    format_fault_recovery,
    run_fault_recovery_cell,
)

#: Small, fast cell used throughout — ~0.3 s of wall clock.
FAST = dict(
    ring_size=5,
    servers_per_switch=1,
    per_pair_bandwidth_bps=2e9,
    duration=0.002,
    cut_at=0.0008,
    repair_after=0.0006,
    warmup=0.0003,
    bin_width=0.0001,
)


class TestCell:
    def test_cut_disrupts_live_traffic(self):
        result = run_fault_recovery_cell(num_rings=1, num_cuts=1, **FAST)
        assert result.channels_severed > 0
        # The acceptance bar: an in-use channel cut shows up in traffic.
        assert result.packets_dropped + result.packets_rerouted > 0
        assert result.packets_delivered > 100

    def test_goodput_recovers_after_repair(self):
        result = run_fault_recovery_cell(num_rings=1, num_cuts=1, **FAST)
        assert result.baseline_goodput_bps > 0
        assert result.recovered_goodput_bps >= 0.9 * result.baseline_goodput_bps
        assert result.recovery_latency is not None

    def test_more_rings_sever_fewer_channels(self):
        one = run_fault_recovery_cell(num_rings=1, num_cuts=1, **FAST)
        three = run_fault_recovery_cell(num_rings=3, num_cuts=1, **FAST)
        assert three.channels_severed <= one.channels_severed

    def test_deterministic_for_seed(self):
        a = run_fault_recovery_cell(num_rings=2, num_cuts=1, seed=4, **FAST)
        b = run_fault_recovery_cell(num_rings=2, num_cuts=1, seed=4, **FAST)
        assert a == b

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="router"):
            run_fault_recovery_cell(router="hot-potato", **FAST)

    def test_bad_windows_rejected(self):
        bad = dict(FAST)
        bad["warmup"] = bad["cut_at"]
        with pytest.raises(ValueError, match="warmup"):
            run_fault_recovery_cell(**bad)
        bad = dict(FAST)
        bad["repair_after"] = 1.0
        with pytest.raises(ValueError, match="duration"):
            run_fault_recovery_cell(**bad)

    def test_never_repaired_stays_degraded(self):
        no_repair = dict(FAST, repair_after=None)
        result = run_fault_recovery_cell(num_rings=1, num_cuts=1, **no_repair)
        assert result.recovery_latency is None

    def test_vlb_router_runs(self):
        result = run_fault_recovery_cell(num_rings=1, num_cuts=1, router="vlb", **FAST)
        assert result.packets_delivered > 100


class TestSweep:
    def test_parallel_matches_serial(self):
        serial = fault_recovery_sweep(
            ring_counts=[1, 2], cut_counts=[1], workers=1, **FAST
        )
        parallel = fault_recovery_sweep(
            ring_counts=[1, 2], cut_counts=[1], workers=2, **FAST
        )
        assert serial == parallel

    def test_format_renders_every_cell(self):
        results = fault_recovery_sweep(ring_counts=[1], cut_counts=[1], **FAST)
        text = format_fault_recovery(results)
        assert "rings" in text and "rerouted" in text
        assert len(text.splitlines()) == 3 + len(results)
