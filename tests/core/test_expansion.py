"""Tests for incremental ring expansion (Section 8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.channels import ChannelAssignmentError, greedy_assignment
from repro.core.expansion import ExpansionError, expand_plan


class TestBasicExpansion:
    def test_expanded_plan_is_valid(self):
        result = expand_plan(greedy_assignment(8), 12)
        result.plan.validate()
        assert result.plan.ring_size == 12

    def test_all_old_pairs_survive(self):
        old = greedy_assignment(8)
        result = expand_plan(old, 10)
        old_pairs = {a.pair for a in old.assignments}
        new_pairs = {a.pair for a in result.plan.assignments}
        assert old_pairs <= new_pairs
        assert set(result.preserved) | set(result.retuned) == old_pairs

    def test_added_pairs_touch_new_switches(self):
        result = expand_plan(greedy_assignment(8), 10)
        for s, t in result.added:
            assert s >= 8 or t >= 8
        assert len(result.added) == 10 * 9 // 2 - 8 * 7 // 2

    def test_most_channels_preserved(self):
        # Expansion exists to avoid re-tuning deployed transceivers;
        # growing 8 → 12 should keep the large majority untouched.
        result = expand_plan(greedy_assignment(8), 12)
        assert result.retune_fraction <= 0.25

    def test_noop_expansion(self):
        old = greedy_assignment(6)
        result = expand_plan(old, 6)
        assert result.plan == old
        assert not result.retuned
        assert not result.added

    def test_single_switch_growth(self):
        result = expand_plan(greedy_assignment(8), 9)
        result.plan.validate()
        assert len(result.added) == 8


class TestConstraints:
    def test_shrink_rejected(self):
        with pytest.raises(ExpansionError):
            expand_plan(greedy_assignment(8), 6)

    def test_channel_budget_enforced(self):
        with pytest.raises(ChannelAssignmentError):
            expand_plan(greedy_assignment(30), 40, max_channels=160)

    def test_expansion_near_fibre_limit_needs_retuning(self):
        # Growing 33 → 35 while preserving deployed wavelengths costs
        # more channels than a fresh plan (153); near the 160-channel
        # fibre limit the budget check correctly rejects it — at that
        # point an operator must re-plan (re-tune) instead.
        with pytest.raises(ChannelAssignmentError):
            expand_plan(greedy_assignment(33), 35, max_channels=160)
        unbudgeted = expand_plan(greedy_assignment(33), 35)
        assert unbudgeted.plan.num_channels >= greedy_assignment(35).num_channels


class TestChainedGrowth:
    def test_grow_in_steps(self):
        plan = greedy_assignment(4)
        for target in (6, 8, 10):
            plan = expand_plan(plan, target).plan
            plan.validate()
        assert plan.ring_size == 10

    def test_stepwise_costs_few_channels_vs_fresh(self):
        # Incremental growth may use more wavelengths than planning from
        # scratch; the overhead should stay modest.
        plan = greedy_assignment(6)
        for target in (8, 10, 12):
            plan = expand_plan(plan, target).plan
        fresh = greedy_assignment(12)
        assert plan.num_channels <= fresh.num_channels * 1.6 + 2

    @given(st.integers(2, 10), st.integers(0, 6))
    @settings(max_examples=25, deadline=None)
    def test_property_expansion_always_valid(self, start, growth):
        result = expand_plan(greedy_assignment(start), start + growth)
        result.plan.validate()
        assert 0.0 <= result.retune_fraction <= 1.0
