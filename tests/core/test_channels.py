"""Tests for wavelength assignment (paper Section 3.1 / Figure 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import channels as ch


class TestRingGeometry:
    def test_clockwise_distance_wraps(self):
        assert ch.clockwise_distance(6, 1, 8) == 3

    def test_clockwise_distance_forward(self):
        assert ch.clockwise_distance(1, 6, 8) == 5

    def test_ring_distance_is_shorter_arc(self):
        assert ch.ring_distance(0, 5, 8) == 3
        assert ch.ring_distance(5, 0, 8) == 3

    def test_arc_links_clockwise(self):
        assert ch.arc_links(1, 3, 6, clockwise=True) == (1, 2)

    def test_arc_links_counterclockwise(self):
        # Counter-clockwise from 1 to 3 goes 1 → 0 → 5 → 4 → 3, crossing
        # segments 3, 4, 5, 0 (segment m joins m and m+1).
        assert set(ch.arc_links(1, 3, 6, clockwise=False)) == {3, 4, 5, 0}

    def test_arc_links_empty_for_same_node(self):
        assert ch.arc_links(2, 2, 6, clockwise=True) == ()

    def test_all_pairs_count(self):
        assert len(ch.all_pairs(8)) == 8 * 7 // 2

    @given(st.integers(2, 30), st.integers(0, 29), st.integers(0, 29))
    def test_arcs_cover_the_whole_ring(self, m, s, t):
        s %= m
        t %= m
        if s == t:
            return
        cw = ch.arc_links(s, t, m, clockwise=True)
        ccw = ch.arc_links(s, t, m, clockwise=False)
        assert len(cw) + len(ccw) == m
        assert set(cw) | set(ccw) == set(range(m))
        assert not set(cw) & set(ccw)


class TestLowerBound:
    def test_empty_and_trivial_rings(self):
        assert ch.lower_bound(0) == 0
        assert ch.lower_bound(1) == 0
        assert ch.lower_bound(2) == 1

    def test_paper_33_switch_ring(self):
        # Section 3.5: a 33-switch ring needs 137 channels; the link-load
        # bound is (33² − 1) / 8 = 136.
        assert ch.lower_bound(33) == 136

    def test_matches_closed_form_odd(self):
        for m in (5, 7, 9, 11, 33):
            assert ch.lower_bound(m) == (m * m - 1) // 8


class TestGreedyAssignment:
    @pytest.mark.parametrize("m", [2, 3, 4, 5, 8, 12, 16, 24, 33])
    def test_plans_are_valid(self, m):
        plan = ch.greedy_assignment(m)
        plan.validate()
        assert len(plan.assignments) == m * (m - 1) // 2

    @pytest.mark.parametrize("m", [4, 8, 16, 33])
    def test_respects_lower_bound(self, m):
        assert ch.greedy_assignment(m).num_channels >= ch.lower_bound(m)

    def test_near_optimal_at_33(self):
        # Paper: 33 switches need 137 channels; greedy should land within
        # a few channels of the 136 bound.
        plan = ch.greedy_assignment(33)
        assert 136 <= plan.num_channels <= 140

    def test_trivial_sizes(self):
        assert ch.greedy_assignment(0).num_channels == 0
        assert ch.greedy_assignment(1).num_channels == 0
        assert ch.greedy_assignment(2).num_channels == 1

    def test_negative_ring_rejected(self):
        with pytest.raises(ch.ChannelAssignmentError):
            ch.greedy_assignment(-1)

    def test_budget_enforced(self):
        with pytest.raises(ch.ChannelAssignmentError):
            ch.greedy_assignment(36, max_channels=160)

    def test_seeded_runs_are_valid_and_deterministic(self):
        a = ch.greedy_assignment(12, seed=7)
        b = ch.greedy_assignment(12, seed=7)
        a.validate()
        assert a == b

    @given(st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_property_valid_and_bounded(self, m):
        plan = ch.greedy_assignment(m)
        plan.validate()
        # No wavelength index can exceed the pair count.
        assert plan.num_channels <= m * (m - 1) // 2
        assert plan.num_channels >= ch.lower_bound(m)

    @given(st.integers(3, 14), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_property_random_starts_stay_valid(self, m, seed):
        ch.greedy_assignment(m, seed=seed).validate()


class TestILPAssignment:
    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6])
    def test_ilp_matches_lower_bound_small(self, m):
        plan = ch.ilp_assignment(m)
        plan.validate()
        assert plan.num_channels >= ch.lower_bound(m)

    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_greedy_close_to_ilp(self, m):
        greedy = ch.greedy_assignment(m).num_channels
        optimal = ch.ilp_assignment(m).num_channels
        assert optimal <= greedy <= optimal + 2

    def test_ilp_trivial(self):
        assert ch.ilp_assignment(1).num_channels == 0


class TestDerivedQuantities:
    def test_max_ring_size_is_35(self):
        # Figure 5 / Section 3.1: 160 channels cap the ring at 35 switches.
        assert ch.max_ring_size(ch.FIBER_CHANNEL_LIMIT) == 35

    def test_rings_needed_for_33(self):
        # Section 3.5: 33 switches → two 80-channel WDMs.
        assert ch.rings_needed(33) == 2

    def test_rings_needed_small(self):
        assert ch.rings_needed(8) == 1

    def test_wavelengths_required_methods_agree_small(self):
        for m in (3, 5, 7):
            assert (
                ch.wavelengths_required(m, "lower-bound")
                <= ch.wavelengths_required(m, "ilp")
                <= ch.wavelengths_required(m, "greedy")
            )

    def test_unknown_method_rejected(self):
        with pytest.raises(ch.ChannelAssignmentError):
            ch.wavelengths_required(5, "magic")


class TestChannelPlanQueries:
    def test_assignment_lookup(self):
        plan = ch.greedy_assignment(6)
        a = plan.assignment_for(2, 5)
        assert a.pair == (2, 5)
        assert plan.assignment_for(5, 2).pair == (2, 5)

    def test_missing_pair_raises(self):
        plan = ch.greedy_assignment(4)
        with pytest.raises(ch.ChannelAssignmentError):
            plan.assignment_for(0, 9)

    def test_channels_on_link_disjoint_per_wavelength(self):
        plan = ch.greedy_assignment(10)
        for link in range(10):
            wavelengths = plan.channels_on_link(link)
            assert len(wavelengths) == plan.link_load(link)

    def test_validate_catches_duplicate_wavelength(self):
        plan = ch.greedy_assignment(5)
        # Force two assignments onto one wavelength and shared links.
        clash = tuple(
            ch.PathAssignment(a.src, a.dst, 0, a.clockwise, a.links)
            for a in plan.assignments
        )
        broken = ch.ChannelPlan(ring_size=5, assignments=clash)
        with pytest.raises(ch.ChannelAssignmentError):
            broken.validate()

    def test_validate_catches_missing_pair(self):
        plan = ch.greedy_assignment(5)
        broken = ch.ChannelPlan(ring_size=5, assignments=plan.assignments[:-1])
        with pytest.raises(ch.ChannelAssignmentError):
            broken.validate()
