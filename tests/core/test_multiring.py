"""Tests for multi-ring wavelength planning (Section 3.5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.channels import greedy_assignment
from repro.core.fault import RingFaultModel
from repro.core.multiring import MultiRingPlan, MultiRingPlanError, plan_rings


class TestPaperScale:
    @pytest.fixture(scope="class")
    def plan33(self):
        return plan_rings(33)

    def test_two_rings_suffice(self, plan33):
        # 136 channels over two 80-channel WDMs (Section 3.5).
        assert plan33.num_rings == 2
        for ring in range(2):
            assert plan33.wavelengths_on_ring(ring) <= 80

    def test_validates(self, plan33):
        plan33.validate()

    def test_segment_load_balanced(self, plan33):
        # Greedy balancing keeps every fibre segment's channels spread
        # evenly across the rings.
        assert plan33.max_segment_imbalance() <= 1

    def test_every_pair_routed(self, plan33):
        assert len(plan33.assignments) == 33 * 32 // 2
        assert plan33.ring_of(0, 16) in (0, 1)

    def test_missing_pair_raises(self, plan33):
        with pytest.raises(MultiRingPlanError):
            plan33.ring_of(0, 99)


class TestSmallRings:
    def test_single_ring_when_it_fits(self):
        plan = plan_rings(8)
        assert plan.num_rings == 1

    def test_explicit_ring_count(self):
        plan = plan_rings(8, num_rings=3)
        assert plan.num_rings == 3
        rings_used = {a.ring for a in plan.assignments}
        assert rings_used == {0, 1, 2}

    def test_tiny_wdm_forces_more_rings(self):
        plan = plan_rings(8, wdm_channels=4)
        assert plan.num_rings >= 3
        for ring in range(plan.num_rings):
            assert plan.wavelengths_on_ring(ring) <= 4

    def test_infeasible_budget_raises(self):
        with pytest.raises(MultiRingPlanError):
            plan_rings(8, num_rings=1, wdm_channels=4)

    def test_ring_size_mismatch_rejected(self):
        with pytest.raises(MultiRingPlanError):
            plan_rings(10, base_plan=greedy_assignment(8))

    def test_trivial_ring_rejected(self):
        with pytest.raises(MultiRingPlanError):
            plan_rings(1)


class TestValidation:
    def test_validate_catches_overfull_ring(self):
        plan = plan_rings(8, num_rings=2)
        squeezed = MultiRingPlan(
            ring_size=8,
            num_rings=2,
            wdm_channels=1,
            assignments=plan.assignments,
        )
        with pytest.raises(MultiRingPlanError):
            squeezed.validate()

    def test_validate_catches_missing_pairs(self):
        plan = plan_rings(6)
        broken = MultiRingPlan(
            ring_size=6,
            num_rings=plan.num_rings,
            wdm_channels=plan.wdm_channels,
            assignments=plan.assignments[:-1],
        )
        with pytest.raises(MultiRingPlanError):
            broken.validate()

    @given(st.integers(2, 16), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_plans_always_validate(self, ring_size, num_rings):
        plan = plan_rings(ring_size, num_rings=num_rings)
        plan.validate()
        # Greedy balancing is heuristic; the imbalance stays small but
        # is not guaranteed minimal.
        assert plan.max_segment_imbalance() <= 3


class TestFaultModelIntegration:
    def test_balanced_placement_beats_striping(self):
        # A load-balanced placement never does worse on partitions than
        # wavelength-striping, and typically better.
        base = greedy_assignment(33)
        striped = RingFaultModel(33, 2, base)
        balanced = RingFaultModel(33, multi_plan=plan_rings(33, base_plan=base))
        s_striped = striped.simulate(4, trials=800, seed=9)
        s_balanced = balanced.simulate(4, trials=800, seed=9)
        # Both are tiny; the balanced placement must not be materially
        # worse (Monte-Carlo noise floor ~1/800).
        assert (
            s_balanced.partition_probability
            <= s_striped.partition_probability + 0.005
        )

    def test_multi_plan_size_mismatch(self):
        with pytest.raises(Exception):
            RingFaultModel(10, multi_plan=plan_rings(8))


class TestCapacityBoundaries:
    def test_demand_exactly_at_wdm_limit_fits_one_ring(self):
        # 9 switches need exactly 10 wavelengths; a 10-channel WDM is
        # full to the last slot but must still pack on a single ring.
        demand = greedy_assignment(9).num_channels
        plan = plan_rings(9, wdm_channels=demand)
        assert plan.num_rings == 1
        assert plan.wavelengths_on_ring(0) == demand
        plan.validate()

    def test_demand_one_over_limit_needs_second_ring(self):
        demand = greedy_assignment(9).num_channels
        plan = plan_rings(9, wdm_channels=demand - 1)
        assert plan.num_rings == 2
        plan.validate()

    def test_overfull_segment_makes_second_ring_mandatory(self):
        # 26 switches demand 90 wavelengths > the 80-channel WDM, so a
        # single physical ring is infeasible no matter the placement.
        with pytest.raises(MultiRingPlanError):
            plan_rings(26, num_rings=1)
        plan = plan_rings(26)
        assert plan.num_rings == 2
        assert {a.ring for a in plan.assignments} == {0, 1}
        plan.validate()

    def test_single_switch_ring_rejected(self):
        with pytest.raises(MultiRingPlanError, match="two switches"):
            plan_rings(1)


class TestRuntimeFaultViews:
    def test_channels_crossing_matches_pair_routes(self):
        plan = plan_rings(9, num_rings=2)
        routes = plan.pair_routes()
        for ring in range(plan.num_rings):
            for segment in range(plan.ring_size):
                crossing = plan.channels_crossing(ring, segment)
                assert list(crossing) == sorted(crossing)
                for pair in crossing:
                    pair_ring, segments = routes[pair]
                    assert pair_ring == ring and segment in segments

    def test_pair_routes_covers_every_pair(self):
        plan = plan_rings(7, num_rings=2)
        routes = plan.pair_routes()
        assert set(routes) == {
            (s, t) for s in range(7) for t in range(s + 1, 7)
        }

    def test_channels_crossing_counts_segment_load(self):
        plan = plan_rings(9, num_rings=2)
        for ring in range(plan.num_rings):
            for segment in range(plan.ring_size):
                assert len(plan.channels_crossing(ring, segment)) == (
                    plan.segment_load(ring, segment)
                )
