"""Tests for the multi-ring fault model (paper Section 3.5 / Figure 6)."""

import pytest

from repro.core import fault
from repro.core.channels import greedy_assignment


@pytest.fixture(scope="module")
def plan33():
    return greedy_assignment(33)


class TestSingleScenario:
    def test_no_failures_no_loss(self, plan33):
        model = fault.RingFaultModel(33, 1, plan33)
        assert model.bandwidth_loss(set()) == 0.0
        assert not model.is_partitioned(set())

    def test_one_failure_loses_roughly_quarter(self, plan33):
        # Mean segment load on a 33-ring is 136/528 ≈ 26 % of channels
        # (the paper quotes ~20 %).
        model = fault.RingFaultModel(33, 1, plan33)
        stats = model.simulate(num_failures=1, trials=200, seed=1)
        assert 0.15 <= stats.bandwidth_loss <= 0.35

    def test_one_failure_never_partitions(self, plan33):
        # A single cut leaves multi-hop paths around the other side.
        model = fault.RingFaultModel(33, 1, plan33)
        stats = model.simulate(num_failures=1, trials=100, seed=2)
        assert stats.partition_probability == 0.0

    def test_two_failures_on_one_ring_partition(self, plan33):
        # Paper: "two link failures in a ring partition the network"
        # (probability > 90 % in Figure 6; exactly 1 in our model since
        # two distinct segment cuts always split the ring).
        model = fault.RingFaultModel(33, 1, plan33)
        stats = model.simulate(num_failures=2, trials=100, seed=3)
        assert stats.partition_probability >= 0.9


class TestMultiRing:
    def test_two_rings_rarely_partition_on_four_failures(self, plan33):
        # Figure 6's headline: with two rings, four simultaneous fibre
        # failures partition with probability ≈ 0.0024.
        model = fault.RingFaultModel(33, 2, plan33)
        stats = model.simulate(num_failures=4, trials=1500, seed=4)
        assert stats.partition_probability < 0.03

    def test_four_rings_cut_loss_to_six_percent(self, plan33):
        # Figure 6: one failure on a 4-ring deployment loses ~6 %.
        model = fault.RingFaultModel(33, 4, plan33)
        stats = model.simulate(num_failures=1, trials=300, seed=5)
        assert 0.03 <= stats.bandwidth_loss <= 0.10

    def test_loss_decreases_with_more_rings(self, plan33):
        losses = []
        for rings in (1, 2, 4):
            model = fault.RingFaultModel(33, rings, plan33)
            losses.append(model.simulate(1, trials=200, seed=6).bandwidth_loss)
        assert losses[0] > losses[1] > losses[2]

    def test_channels_spread_over_all_rings(self, plan33):
        model = fault.RingFaultModel(33, 2, plan33)
        rings_used = {ring for ring, _segments in model.pair_routes.values()}
        assert rings_used == {0, 1}


class TestValidation:
    def test_plan_size_mismatch(self, plan33):
        with pytest.raises(fault.FaultModelError):
            fault.RingFaultModel(10, 1, plan33)

    def test_zero_rings_rejected(self):
        with pytest.raises(fault.FaultModelError):
            fault.RingFaultModel(8, 0)

    def test_too_many_failures_rejected(self):
        model = fault.RingFaultModel(5, 1)
        with pytest.raises(fault.FaultModelError):
            model.simulate(num_failures=6, trials=10)

    def test_deterministic_for_seed(self):
        model = fault.RingFaultModel(9, 2)
        a = model.simulate(2, trials=50, seed=42)
        b = model.simulate(2, trials=50, seed=42)
        assert a == b


class TestExactEnumeration:
    def test_monte_carlo_matches_exact_small_ring(self):
        model = fault.RingFaultModel(6, 1)
        exact = model.exact_partition_probability(2)
        sampled = model.simulate(2, trials=2000, seed=7).partition_probability
        assert abs(exact - sampled) < 0.05

    def test_exact_single_failure_is_zero(self):
        model = fault.RingFaultModel(6, 1)
        assert model.exact_partition_probability(1) == 0.0


class TestSweep:
    def test_figure6_grid_shape(self):
        results = fault.figure6_sweep(ring_size=9, max_rings=2, max_failures=2, trials=50)
        assert len(results) == 4
        combos = {(r.num_rings, r.num_failures) for r in results}
        assert combos == {(1, 1), (1, 2), (2, 1), (2, 2)}


class TestDegenerateRings:
    def test_single_switch_ring_has_no_channels(self):
        model = fault.RingFaultModel(1, 1)
        assert model.pair_routes == {}
        assert model.bandwidth_loss({(0, 0)}) == 0.0
        # One node is trivially connected, cut or no cut.
        assert not model.is_partitioned({(0, 0)})

    def test_single_switch_monte_carlo_is_all_zero(self):
        stats = fault.RingFaultModel(1, 1).simulate(1, trials=10)
        assert stats.bandwidth_loss == 0.0
        assert stats.partition_probability == 0.0

    def test_two_switch_ring_single_cut(self):
        # One pair, one channel; its path crosses one of the two
        # segments, so a single cut either severs everything or nothing.
        model = fault.RingFaultModel(2, 1)
        (segments,) = [segs for _, segs in model.pair_routes.values()]
        used = {(0, segments[0])}
        unused = {(0, 1 - segments[0])}
        assert model.bandwidth_loss(used) == 1.0
        assert model.is_partitioned(used)
        assert model.bandwidth_loss(unused) == 0.0
