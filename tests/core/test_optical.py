"""Tests for the optical power budget (paper Section 3.3)."""

import pytest

from repro.core import optical as opt


class TestPaperArithmetic:
    def test_max_unamplified_hops_is_three(self):
        # (4 − (−15)) / 6 = 3.17 → 3 DWDMs.
        assert opt.max_unamplified_wdm_hops() == 3

    def test_amplifier_every_two_switches(self):
        assert opt.amplifier_spacing_switches() == 2

    def test_24_ring_needs_12_amplifiers(self):
        assert opt.amplifiers_required(24) == 12

    def test_tiny_rings_need_no_amplifier(self):
        assert opt.amplifiers_required(0) == 0
        assert opt.amplifiers_required(1) == 0

    def test_power_budget_is_19_db(self):
        assert opt.Transceiver().power_budget_db == pytest.approx(19.0)


class TestCustomHardware:
    def test_lossier_wdm_tightens_spacing(self):
        lossy = opt.WDMMux(insertion_loss_db=9.0)
        assert opt.max_unamplified_wdm_hops(wdm=lossy) == 2
        assert opt.amplifier_spacing_switches(wdm=lossy) == 1

    def test_budget_too_small_raises(self):
        weak = opt.Transceiver(output_power_dbm=-5, receiver_sensitivity_dbm=-14)
        with pytest.raises(opt.OpticalBudgetError):
            opt.amplifier_spacing_switches(transceiver=weak)

    def test_zero_insertion_loss_rejected(self):
        with pytest.raises(opt.OpticalBudgetError):
            opt.max_unamplified_wdm_hops(wdm=opt.WDMMux(insertion_loss_db=0))


class TestSignalTrace:
    def test_zero_hops_is_launch_power(self):
        trace = opt.trace_channel(0)
        assert trace.levels_dbm == (4.0,)
        assert trace.feasible

    def test_one_hop_loses_two_insertion_losses(self):
        trace = opt.trace_channel(1)
        assert trace.final_power_dbm == pytest.approx(4.0 - 12.0)
        assert trace.feasible

    def test_long_path_stays_above_sensitivity(self):
        trace = opt.trace_channel(16)
        assert trace.feasible
        assert trace.min_power_dbm >= opt.Transceiver().receiver_sensitivity_dbm

    def test_attenuator_pads_hot_receivers(self):
        # A 1-hop path lands at −8 dBm, below the 0 dBm overload point,
        # so no receiver pad is needed; a 0-hop loopback would need one.
        assert opt.trace_channel(1).attenuation_needed_db == pytest.approx(0.0)
        assert opt.trace_channel(0).attenuation_needed_db == pytest.approx(4.0)

    def test_insufficient_gain_is_infeasible(self):
        feeble = opt.Amplifier(gain_db=1.0)
        trace = opt.trace_channel(8, amplifier=feeble)
        assert not trace.feasible

    def test_negative_hops_rejected(self):
        with pytest.raises(opt.OpticalBudgetError):
            opt.trace_channel(-1)


class TestRingValidation:
    def test_paper_rings_validate(self):
        for size in (4, 24, 33, 35):
            opt.validate_ring_budget(size)

    def test_weak_amplifier_fails_validation(self):
        with pytest.raises(opt.OpticalBudgetError):
            opt.validate_ring_budget(33, amplifier=opt.Amplifier(gain_db=0.5))
