"""Tests for the QuartzRing design element (paper Sections 3 and 3.2)."""

import pytest

from repro.core import QuartzConfigError, QuartzRing
from repro.topology.base import LinkKind, NodeKind
from repro.units import GBPS


class TestCanonicalElement:
    """The paper's 64-port, 32/32 split reference configuration."""

    @pytest.fixture()
    def ring(self):
        return QuartzRing.from_switch_ports(64)

    def test_mimics_1056_port_switch(self, ring):
        assert ring.num_switches == 33
        assert ring.total_server_ports == 1056  # 32 × 33

    def test_port_density(self, ring):
        assert ring.port_density == 64

    def test_oversubscription_is_32_to_1(self, ring):
        assert ring.oversubscription == 32.0

    def test_two_switch_worst_case(self, ring):
        assert ring.max_switch_hops == 2

    def test_needs_two_fibre_rings(self, ring):
        # Section 3.5: 137 (ours: 136) channels → two 80-channel WDMs.
        assert ring.physical_rings == 2
        assert ring.wdms_required == 66

    def test_validates(self, ring):
        ring.validate()

    def test_channel_plan_valid(self, ring):
        plan = ring.channel_plan()
        plan.validate()
        assert plan.ring_size == 33


class TestDualTor:
    def test_2080_ports(self):
        ring = QuartzRing.dual_tor(64)
        assert ring.total_server_ports == 2080  # 32 × 65
        assert ring.num_racks == 65
        assert ring.num_switches == 130

    def test_peers_split_between_rack_switches(self):
        ring = QuartzRing.dual_tor(64)
        assert ring.peers_per_switch == 32

    def test_topology_paths_stay_two_switches(self):
        topo = QuartzRing.dual_tor(8).to_topology(servers_per_switch=1)
        import networkx as nx

        servers = topo.servers()
        path = nx.shortest_path(topo.graph, servers[0], servers[-1])
        switches = [n for n in path if topo.is_switch(n)]
        assert len(switches) <= 2


class TestConfigValidation:
    def test_too_few_switches(self):
        with pytest.raises(QuartzConfigError):
            QuartzRing(num_switches=1)

    def test_insufficient_mesh_ports(self):
        with pytest.raises(QuartzConfigError):
            QuartzRing(num_switches=40, server_ports=32, mesh_ports=32)

    def test_odd_port_count_rejected(self):
        with pytest.raises(QuartzConfigError):
            QuartzRing.from_switch_ports(63)

    def test_non_positive_ports_rejected(self):
        with pytest.raises(QuartzConfigError):
            QuartzRing(num_switches=4, server_ports=0, mesh_ports=4)

    def test_three_switches_per_rack_rejected(self):
        with pytest.raises(QuartzConfigError):
            QuartzRing(num_switches=9, switches_per_rack=3)


class TestTopologyMaterialization:
    def test_full_mesh_links(self):
        topo = QuartzRing(num_switches=5, server_ports=4, mesh_ports=4).to_topology(
            servers_per_switch=2
        )
        mesh_links = [l for l in topo.links() if l.link_kind is LinkKind.MESH]
        assert len(mesh_links) == 10  # C(5, 2)

    def test_server_count_and_racks(self):
        topo = QuartzRing(num_switches=4, server_ports=8, mesh_ports=3).to_topology(
            servers_per_switch=3
        )
        assert len(topo.servers()) == 12
        assert topo.racks() == [0, 1, 2, 3]

    def test_cannot_overfill_server_ports(self):
        ring = QuartzRing(num_switches=4, server_ports=2, mesh_ports=3)
        with pytest.raises(QuartzConfigError):
            ring.to_topology(servers_per_switch=3)

    def test_switch_model_propagates(self):
        topo = QuartzRing(
            num_switches=3, server_ports=2, mesh_ports=2, switch_model="SF_1G"
        ).to_topology(servers_per_switch=1)
        for sw in topo.switches():
            assert topo.switch_model(sw) == "SF_1G"

    def test_dual_tor_servers_dual_homed(self):
        topo = QuartzRing.dual_tor(8).to_topology(servers_per_switch=1)
        server = topo.servers()[0]
        tors = [n for n in topo.graph.neighbors(server)]
        assert len(tors) == 2
        assert all(topo.kind(t) is NodeKind.TOR for t in tors)


class TestOpticsAccounting:
    def test_transceiver_count_is_two_per_pair(self):
        ring = QuartzRing(num_switches=8, server_ports=8, mesh_ports=8)
        assert ring.transceivers_required == 8 * 7

    def test_amplifiers_scale_with_rings(self):
        small = QuartzRing(num_switches=8, server_ports=8, mesh_ports=8)
        assert small.physical_rings == 1
        assert small.amplifiers_required == 4  # ceil(8 / 2)

    def test_summary_mentions_key_numbers(self):
        text = QuartzRing.from_switch_ports(64).summary()
        assert "1056" in text
        assert "M=33" in text

    def test_custom_link_rate(self):
        ring = QuartzRing(
            num_switches=4, server_ports=4, mesh_ports=3, link_rate=40 * GBPS
        )
        topo = ring.to_topology(servers_per_switch=1)
        mesh = [l for l in topo.links() if l.link_kind is LinkKind.MESH]
        assert all(l.capacity == 40 * GBPS for l in mesh)
