"""Tests for the per-plan optical power report."""

import pytest

from repro.core import channels, optical


class TestPowerReport:
    @pytest.fixture(scope="class")
    def report33(self):
        return optical.ring_power_report(channels.greedy_assignment(33))

    def test_feasible_at_paper_scale(self, report33):
        assert report33.all_feasible
        assert report33.worst_min_power_dbm >= -15.0

    def test_worst_pair_is_long(self, report33):
        s, t = report33.worst_pair
        assert channels.ring_distance(s, t, 33) >= 12

    def test_histogram_covers_all_pairs(self, report33):
        assert sum(report33.hops_histogram.values()) == 33 * 32 // 2
        assert max(report33.hops_histogram) == 16  # ⌊33/2⌋

    def test_amplifier_count_matches_spacing(self, report33):
        assert report33.amplifiers == optical.amplifiers_required(33)

    def test_attenuation_is_positive(self, report33):
        # Short channels arrive hot and need receiver pads.
        assert report33.total_attenuation_db > 0

    def test_weak_amplifier_flagged_infeasible(self):
        report = optical.ring_power_report(
            channels.greedy_assignment(24),
            amplifier=optical.Amplifier(gain_db=0.5),
        )
        assert not report.all_feasible

    def test_empty_plan_rejected(self):
        with pytest.raises(optical.OpticalBudgetError):
            optical.ring_power_report(channels.greedy_assignment(1))

    def test_small_ring_needs_no_amplification_events(self):
        report = optical.ring_power_report(channels.greedy_assignment(4))
        assert report.all_feasible
        assert max(report.hops_histogram) == 2
