"""Tests for channel-plan JSON serialization."""

import json

import pytest

from repro.core.channels import greedy_assignment
from repro.core.multiring import plan_rings
from repro.core.serialization import (
    SerializationError,
    multiring_from_json,
    multiring_to_json,
    plan_from_json,
    plan_to_json,
)


class TestSingleRingRoundTrip:
    @pytest.mark.parametrize("size", [2, 5, 12, 33])
    def test_round_trip(self, size):
        plan = greedy_assignment(size)
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_indented_output_is_valid_json(self):
        text = plan_to_json(greedy_assignment(6), indent=2)
        assert "\n" in text
        json.loads(text)

    def test_document_fields(self):
        doc = json.loads(plan_to_json(greedy_assignment(4)))
        assert doc["format"] == "quartz-channel-plan"
        assert doc["ring_size"] == 4
        assert len(doc["assignments"]) == 6


class TestMultiRingRoundTrip:
    def test_round_trip(self):
        plan = plan_rings(12, num_rings=2)
        assert multiring_from_json(multiring_to_json(plan)) == plan

    def test_format_tag(self):
        doc = json.loads(multiring_to_json(plan_rings(6)))
        assert doc["format"] == "quartz-multiring-plan"


class TestRejection:
    def test_not_json(self):
        with pytest.raises(SerializationError):
            plan_from_json("not json {")

    def test_wrong_top_level_type(self):
        with pytest.raises(SerializationError):
            plan_from_json("[1, 2, 3]")

    def test_wrong_format_tag(self):
        text = plan_to_json(greedy_assignment(4))
        with pytest.raises(SerializationError):
            multiring_from_json(text)

    def test_wrong_version(self):
        doc = json.loads(plan_to_json(greedy_assignment(4)))
        doc["version"] = 99
        with pytest.raises(SerializationError):
            plan_from_json(json.dumps(doc))

    def test_missing_keys(self):
        doc = json.loads(plan_to_json(greedy_assignment(4)))
        del doc["assignments"]
        with pytest.raises(SerializationError):
            plan_from_json(json.dumps(doc))

    def test_malformed_assignment(self):
        doc = json.loads(plan_to_json(greedy_assignment(4)))
        del doc["assignments"][0]["channel"]
        with pytest.raises(SerializationError):
            plan_from_json(json.dumps(doc))

    def test_invalid_plan_content_rejected(self):
        # A tampered document that parses but violates plan invariants
        # (duplicate pair) must fail validation on load.
        doc = json.loads(plan_to_json(greedy_assignment(4)))
        doc["assignments"][1] = dict(doc["assignments"][0])
        with pytest.raises(Exception):
            plan_from_json(json.dumps(doc))
