"""Tests for the ASCII chart renderer."""

import pytest

from repro.textplot import (
    SPARK_LEVELS,
    ChartError,
    Series,
    bar_chart,
    line_chart,
    sparkline,
    sweep_to_series,
)


class TestLineChart:
    def test_markers_and_legend_present(self):
        chart = line_chart(
            [
                Series("tree", ((1, 7.0), (2, 8.0), (4, 9.0))),
                Series("quartz", ((1, 2.0), (2, 2.1), (4, 2.2))),
            ],
            title="demo",
        )
        assert "demo" in chart
        assert "o tree" in chart
        assert "x quartz" in chart
        plot_rows = [l for l in chart.splitlines() if "|" in l]
        assert any("o" in row for row in plot_rows)
        assert any("x" in row for row in plot_rows)

    def test_axis_labels(self):
        chart = line_chart(
            [Series("a", ((0, 0.0), (10, 5.0)))],
            x_label="tasks",
            y_label="us",
        )
        assert "x: tasks" in chart
        assert "y: us" in chart

    def test_extremes_land_on_edges(self):
        chart = line_chart([Series("a", ((0, 0.0), (10, 10.0)))], width=20, height=6)
        rows = [l for l in chart.splitlines() if "|" in l]
        assert rows[0].rstrip().endswith("o")  # max value, top-right
        assert rows[-1].split("|")[1][0] == "o"  # min value, bottom-left

    def test_flat_series_renders(self):
        chart = line_chart([Series("flat", ((1, 5.0), (2, 5.0)))])
        assert "flat" in chart

    def test_empty_rejected(self):
        with pytest.raises(ChartError):
            line_chart([])
        with pytest.raises(ChartError):
            line_chart([Series("a", ())])

    def test_too_small_rejected(self):
        with pytest.raises(ChartError):
            line_chart([Series("a", ((0, 1.0),))], width=5)


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart({"full": 1.0, "half": 0.5}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_values_printed(self):
        chart = bar_chart({"a": 0.824}, fmt="{:.2f}")
        assert "0.82" in chart

    def test_empty_rejected(self):
        with pytest.raises(ChartError):
            bar_chart({})

    def test_nonpositive_rejected(self):
        with pytest.raises(ChartError):
            bar_chart({"a": 0.0})


class TestSparkline:
    def test_min_and_max_map_to_extreme_levels(self):
        line = sparkline([0.0, 10.0])
        assert line == SPARK_LEVELS[0] + SPARK_LEVELS[-1]

    def test_intermediate_values_rank_monotonically(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        ranks = [SPARK_LEVELS.index(ch) for ch in line]
        assert ranks == sorted(ranks)
        assert ranks[0] == 0 and ranks[-1] == len(SPARK_LEVELS) - 1

    def test_constant_series_uses_middle_level(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert line == SPARK_LEVELS[len(SPARK_LEVELS) // 2] * 3

    def test_custom_levels(self):
        assert sparkline([0, 1, 2], levels=".#") == "..#"

    def test_empty_rejected(self):
        with pytest.raises(ChartError):
            sparkline([])

    def test_single_char_levels_rejected(self):
        with pytest.raises(ChartError):
            sparkline([1.0, 2.0], levels="#")


class TestSweepAdapter:
    def test_converts_sweep_points(self):
        from repro.experiments.section7 import SweepPoint

        sweep = {
            "tree": [
                SweepPoint("tree", "scatter", 1, 7e-6, (7e-6,)),
                SweepPoint("tree", "scatter", 2, 8e-6, (8e-6,)),
            ]
        }
        series = sweep_to_series(sweep)
        assert series[0].label == "tree"
        assert series[0].points == ((1, 7.0), (2, 8.0))
