"""Tests for the deployment recommender."""

import pytest

from repro.cost.pricelist import PriceList
from repro.cost.recommend import (
    RecommendationError,
    candidates_for,
    recommend,
)


class TestCandidates:
    def test_small_dc_offers_two_options(self):
        options = candidates_for(500)
        names = [c.name for c in options]
        assert names == ["two-tier tree", "single Quartz ring"]
        assert options[0].baseline

    def test_large_dc_offers_four_options(self):
        options = candidates_for(100_000)
        assert len(options) == 4
        assert sum(c.baseline for c in options) == 1

    def test_invalid_inputs(self):
        with pytest.raises(RecommendationError):
            candidates_for(0)
        with pytest.raises(RecommendationError):
            candidates_for(500, utilization="weekend")


class TestRecommend:
    def test_zero_target_picks_cheapest(self):
        rec = recommend(500, latency_reduction_target=0.0)
        cheapest = min(rec.candidates, key=lambda c: c.cost_per_server)
        assert rec.chosen == cheapest
        assert rec.meets_target

    def test_latency_target_forces_quartz(self):
        rec = recommend(500, latency_reduction_target=0.3)
        assert rec.chosen.name == "single Quartz ring"
        assert rec.meets_target
        assert rec.premium_over_baseline > 0

    def test_large_dc_core_replacement_is_a_bargain(self):
        # Quartz in core: ~70 % reduction at ~zero premium.
        rec = recommend(100_000, latency_reduction_target=0.6)
        assert rec.chosen.name == "Quartz in core"
        assert abs(rec.premium_over_baseline) < 0.10

    def test_aggressive_target_picks_edge_and_core(self):
        rec = recommend(100_000, latency_reduction_target=0.72)
        assert rec.chosen.name == "Quartz in edge and core"

    def test_unreachable_target_flagged(self):
        rec = recommend(500, latency_reduction_target=0.9)
        assert not rec.meets_target
        # Falls back to the strongest reducer available.
        assert rec.chosen.latency_reduction == max(
            c.latency_reduction for c in rec.candidates
        )

    def test_invalid_target(self):
        with pytest.raises(RecommendationError):
            recommend(500, latency_reduction_target=1.0)

    def test_prices_shift_the_verdict(self):
        cheap_optics = PriceList(dwdm_transceiver=10.0, dwdm_mux=100.0)
        rec = recommend(500, latency_reduction_target=0.0, prices=cheap_optics)
        # With near-free optics the ring can undercut the tree.
        ring = next(c for c in rec.candidates if not c.baseline)
        tree = next(c for c in rec.candidates if c.baseline)
        assert ring.cost_per_server < tree.cost_per_server * 1.1
