"""Tests for the cost model (price list, BOMs, Table 8 configurator)."""

import pytest

from repro.cost import (
    BillOfMaterials,
    BOMError,
    DEFAULT_PRICES,
    PriceList,
    quartz_core_bom,
    quartz_edge_and_core_bom,
    quartz_edge_bom,
    quartz_ring_bom,
    table8,
    three_tier_tree_bom,
    two_tier_tree_bom,
)
from repro.cost.configurator import format_table8


class TestBillOfMaterials:
    def test_add_and_count(self):
        bom = BillOfMaterials()
        bom.add("fiber_cable", 3)
        bom.add("fiber_cable", 2)
        assert bom.count("fiber_cable") == 5
        assert bom.count("amplifier") == 0

    def test_merge(self):
        a = BillOfMaterials({"fiber_cable": 1})
        b = BillOfMaterials({"fiber_cable": 2, "amplifier": 1})
        merged = a + b
        assert merged.count("fiber_cable") == 3
        assert merged.count("amplifier") == 1
        assert a.count("fiber_cable") == 1  # originals untouched

    def test_total_cost(self):
        bom = BillOfMaterials({"amplifier": 2, "attenuator": 10})
        expected = 2 * DEFAULT_PRICES.amplifier + 10 * DEFAULT_PRICES.attenuator
        assert bom.total_cost() == pytest.approx(expected)

    def test_unknown_part_rejected(self):
        bom = BillOfMaterials({"unobtainium": 1})
        with pytest.raises(BOMError):
            bom.total_cost()

    def test_negative_count_rejected(self):
        with pytest.raises(BOMError):
            BillOfMaterials().add("fiber_cable", -1)

    def test_cost_per_server(self):
        bom = BillOfMaterials({"dac_cable": 100})
        assert bom.cost_per_server(100) == pytest.approx(DEFAULT_PRICES.dac_cable)

    def test_zero_servers_rejected(self):
        with pytest.raises(BOMError):
            BillOfMaterials().cost_per_server(0)


class TestTreeBOMs:
    def test_two_tier_500_servers(self):
        bom = two_tier_tree_bom(500)
        # 11 ToRs (48 servers each) + 3 aggs for 176 uplinks.
        assert bom.count("cut_through_switch") == 14
        assert bom.count("sr_transceiver") == 2 * 176
        assert bom.count("dac_cable") == 500

    def test_three_tier_has_core_switches(self):
        bom = three_tier_tree_bom(10_000)
        assert bom.count("core_switch") >= 1
        assert bom.count("cut_through_switch") > 200

    def test_invalid_server_count(self):
        with pytest.raises(BOMError):
            two_tier_tree_bom(0)


class TestQuartzBOMs:
    def test_ring_optics_counts(self):
        bom = quartz_ring_bom(16, servers=500)
        assert bom.count("cut_through_switch") == 16
        assert bom.count("dwdm_transceiver") == 16 * 15
        assert bom.count("attenuator") == 16 * 15
        assert bom.count("dwdm_mux") == 16  # one ring: 35 λ < 80
        assert bom.count("amplifier") == 8
        assert bom.count("dac_cable") == 500

    def test_33_ring_needs_two_wdms_per_switch(self):
        bom = quartz_ring_bom(33, servers=0, include_server_cables=False)
        assert bom.count("dwdm_mux") == 66

    def test_tiny_ring_rejected(self):
        with pytest.raises(BOMError):
            quartz_ring_bom(1, servers=1)

    def test_edge_bom_includes_cores(self):
        bom = quartz_edge_bom(10_000)
        assert bom.count("core_switch") >= 1
        assert bom.count("qsfp_transceiver") > 0

    def test_core_bom_replaces_ccs_with_rings(self):
        tree = three_tier_tree_bom(100_000)
        quartz = quartz_core_bom(100_000)
        assert quartz.count("core_switch") == 0
        assert quartz.count("cut_through_switch") > tree.count("cut_through_switch")

    def test_edge_and_core_all_optical(self):
        bom = quartz_edge_and_core_bom(100_000)
        assert bom.count("core_switch") == 0
        assert bom.count("dwdm_mux") > 0


class TestTable8:
    @pytest.fixture(scope="class")
    def rows(self):
        return table8()

    def test_six_scenarios(self, rows):
        assert len(rows) == 6
        assert [r.datacenter for r in rows] == [
            "small", "small", "medium", "medium", "large", "large",
        ]

    def test_quartz_premium_is_modest(self, rows):
        # Paper: 7 % (small), 13 % (medium), 0 % / 17 % (large).
        for row in rows:
            assert -0.10 <= row.cost_premium <= 0.30

    def test_core_replacement_is_roughly_cost_neutral(self, rows):
        large_low = next(r for r in rows if r.datacenter == "large" and r.utilization == "low")
        assert abs(large_low.cost_premium) <= 0.10

    def test_latency_reductions_default_to_paper(self, rows):
        small_low = rows[0]
        assert small_low.latency_reduction == pytest.approx(0.33)

    def test_measured_reductions_override(self):
        rows = table8(latency_reductions={("small", "low"): 0.41})
        assert rows[0].latency_reduction == pytest.approx(0.41)

    def test_custom_prices_shift_costs(self):
        pricey = PriceList(dwdm_transceiver=5_000.0)
        default_rows = table8()
        pricey_rows = table8(prices=pricey)
        assert (
            pricey_rows[0].quartz_cost_per_server
            > default_rows[0].quartz_cost_per_server
        )
        assert pricey_rows[0].baseline_cost_per_server == pytest.approx(
            default_rows[0].baseline_cost_per_server
        )

    def test_format_contains_all_rows(self, rows):
        text = format_table8(rows)
        assert "two-tier tree" in text
        assert "Quartz in edge and core" in text
        assert "$/server" in text
