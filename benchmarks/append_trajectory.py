"""Append the current ``BENCH_simulator.json`` to the perf trajectory.

``benchmarks/results/BENCH_simulator.json`` is a single overwritten
snapshot — each benchmark run merges its headline metrics into it, and
the previous run's numbers are gone.  This script turns that snapshot
into history: one JSON line per run, stamped with the commit and time,
appended to the committed ``benchmarks/results/BENCH_trajectory.jsonl``.
The CI benchmark-perf job runs it after the perf suite; run it locally
after a bench session to record the tree you measured.

Re-running on the same commit *replaces* that commit's last entry
instead of stacking duplicates, so iterating on a bench locally keeps
one line per tree state.

Usage::

    PYTHONPATH=src python benchmarks/append_trajectory.py
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
SNAPSHOT = RESULTS_DIR / "BENCH_simulator.json"
TRAJECTORY = RESULTS_DIR / "BENCH_trajectory.jsonl"


def current_commit() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main() -> int:
    if not SNAPSHOT.exists():
        print(f"no snapshot at {SNAPSHOT}; run the benchmarks first",
              file=sys.stderr)
        return 1
    metrics = json.loads(SNAPSHOT.read_text())
    entry = {
        "commit": current_commit(),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "metrics": metrics,
    }
    lines = []
    if TRAJECTORY.exists():
        lines = [
            line for line in TRAJECTORY.read_text().splitlines() if line.strip()
        ]
    if lines and json.loads(lines[-1]).get("commit") == entry["commit"]:
        lines.pop()
    lines.append(json.dumps(entry, sort_keys=True))
    TRAJECTORY.write_text("\n".join(lines) + "\n")
    print(f"trajectory: {len(lines)} entries, latest {entry['commit'][:12]} "
          f"({len(metrics)} metrics)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
