"""Live fault recovery: goodput through runtime fibre cuts.

The dynamic companion to the Figure 6 Monte-Carlo: fibre segments are
cut *while packets are in flight* and the table reports what live
traffic experienced — severed channels, dropped and rerouted packets,
the goodput dip, and the post-splice recovery latency.  Asserts the
paper's robustness story end to end: with two or more parallel rings a
cut severs a few channels and goodput barely moves (detours absorb the
severed pairs' load), while a single ring with two simultaneous cuts
partitions and loses a large share of its goodput.
"""

from repro.experiments import fault_recovery_sweep, format_fault_recovery


def bench_fault_recovery_grid(benchmark, report):
    def run():
        return fault_recovery_sweep(
            ring_counts=[1, 2, 3],
            cut_counts=[1, 2],
            workers=None,  # all CPUs; bit-identical to serial
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fault_recovery", format_fault_recovery(results))

    by_cell = {(r.num_rings, r.num_cuts): r for r in results}
    # A cut always severs in-use channels, and live traffic notices.
    for cell in results:
        assert cell.channels_severed > 0
        assert cell.packets_dropped + cell.packets_rerouted > 0
    # Single ring, two cuts: the mesh partitions and goodput craters.
    assert by_cell[(1, 2)].goodput_loss > 0.1
    # Two+ rings ride out the same two cuts with marginal goodput loss.
    assert by_cell[(2, 2)].goodput_loss < 0.05
    assert by_cell[(3, 2)].goodput_loss < 0.05
    # More rings → each cut severs fewer channels.
    assert (
        by_cell[(3, 1)].channels_severed
        <= by_cell[(2, 1)].channels_severed
        <= by_cell[(1, 1)].channels_severed
    )
    # Goodput is back within a bin or two of the splice everywhere it
    # can recover (the partitioned cell heals too: repairs reconnect).
    for cell in results:
        assert cell.recovery_latency is not None
        assert cell.recovery_latency <= 4 * cell.bin_width
