"""Figure 5: wavelengths required vs ring size — greedy vs ILP optimum.

Regenerates the paper's two series: the greedy heuristic across ring
sizes up to past the 160-channel fibre limit, and the exact ILP optimum
for small rings.  Asserts the paper's headline facts: greedy tracks the
optimum closely, and 160 channels cap the ring at 35 switches.
"""

from repro.core import channels as ch


def bench_fig05_greedy_series(benchmark, report):
    sizes = list(range(2, 41))

    def run() -> dict[int, int]:
        ch.wavelengths_required.cache_clear()
        return {m: ch.greedy_assignment(m).num_channels for m in sizes}

    greedy = benchmark(run)
    ilp = {m: ch.ilp_assignment(m).num_channels for m in range(2, 10)}
    bounds = {m: ch.lower_bound(m) for m in sizes}

    lines = [
        "Figure 5: wavelengths required vs ring size",
        f"{'ring size':>10}{'greedy':>10}{'ILP opt':>10}{'bound':>10}",
        "-" * 40,
    ]
    for m in sizes:
        ilp_cell = f"{ilp[m]:>10}" if m in ilp else f"{'':>10}"
        lines.append(f"{m:>10}{greedy[m]:>10}{ilp_cell}{bounds[m]:>10}")
    max_ring = ch.max_ring_size(ch.FIBER_CHANNEL_LIMIT)
    lines.append(f"max ring size within {ch.FIBER_CHANNEL_LIMIT} channels: {max_ring}")
    report("fig05_channel_assignment", "\n".join(lines))

    # Paper facts: greedy ≈ optimal; 35-switch maximum; 33 needs ~137.
    for m, optimal in ilp.items():
        assert greedy[m] <= optimal + 2
    assert max_ring == 35
    assert 136 <= greedy[33] <= 140
    # Greedy never beats the link-load bound.
    for m in sizes:
        assert greedy[m] >= bounds[m]


def bench_fig05_ilp_small_ring(benchmark):
    # The paper solves the ILP exactly for small rings; HiGHS does an
    # 8-switch ring in well under a second.
    plan = benchmark(ch.ilp_assignment, 8)
    plan.validate()
    assert plan.num_channels == ch.ilp_assignment(8).num_channels
