"""Appendix: component decomposition of the Figure 17 latencies.

Not a figure of the paper, but the *explanation* of one: attributes each
architecture's cross-rack packet latency to serialization / switching /
queueing / propagation, confirming that the three-tier tree's budget is
dominated by the CCS core's 6 µs store-and-forward hop — "most of this
latency is from the high-latency core switch" (Section 7.1) — and that
every Quartz replacement removes exactly that term.
"""

from repro.experiments.breakdown import breakdown_table, format_breakdown_table


def bench_latency_decomposition(benchmark, report):
    table = benchmark.pedantic(breakdown_table, rounds=1, iterations=1)
    report("breakdown", format_breakdown_table(table))

    tree = table["three-tier tree"]
    core_free = table["quartz in edge and core"]
    # The tree's switching term includes the 6 µs CCS hop...
    assert tree.switching > 6e-6
    # ...and dominates its total.
    assert tree.switching > 0.6 * tree.total
    # The all-cut-through build has sub-2 µs switching.
    assert core_free.switching < 2e-6
    # The switching delta explains most of the end-to-end gap.
    gap = tree.total - core_free.total
    switching_gap = tree.switching - core_free.switching
    assert switching_gap > 0.7 * gap
    # Light probes queue negligibly everywhere.
    for breakdown in table.values():
        assert breakdown.queueing < 0.2 * breakdown.total
