"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation.  The regenerated table is written to ``benchmarks/results/``
and echoed to the real stdout (bypassing pytest capture) so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` preserves
it; pytest-benchmark's own timing table covers the runtime cost of each
experiment.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable perf trajectory, merged across bench modules and
#: uploaded as a CI artifact.  One flat JSON object per tree state.
BENCH_JSON = RESULTS_DIR / "BENCH_simulator.json"


@pytest.fixture()
def report():
    """Write a named experiment table to disk and the terminal."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        sys.__stdout__.write(f"\n{text}\n[saved to {path}]\n")
        sys.__stdout__.flush()

    return _report


@pytest.fixture()
def bench_record():
    """Merge metric keys into ``BENCH_simulator.json``.

    Each bench module records its headline numbers under its own key
    prefix; merging (rather than rewriting) lets any subset of the
    suite run and still produce one coherent artifact.
    """

    def _record(**metrics: float) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        data = {}
        if BENCH_JSON.exists():
            data = json.loads(BENCH_JSON.read_text())
        data.update({k: v for k, v in sorted(metrics.items())})
        BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        sys.__stdout__.write(f"[recorded {len(metrics)} metrics to {BENCH_JSON}]\n")
        sys.__stdout__.flush()

    return _record
