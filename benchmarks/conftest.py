"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation.  The regenerated table is written to ``benchmarks/results/``
and echoed to the real stdout (bypassing pytest capture) so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` preserves
it; pytest-benchmark's own timing table covers the runtime cost of each
experiment.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture()
def report():
    """Write a named experiment table to disk and the terminal."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        sys.__stdout__.write(f"\n{text}\n[saved to {path}]\n")
        sys.__stdout__.flush()

    return _report
