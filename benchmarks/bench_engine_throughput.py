"""Engine and sweep throughput: the hot-path trajectory across PRs.

Measures the levels the successive overhauls targeted and renders them
against two baselines measured on this container:

* the seed tree (commit 357d95d, before any engine work);
* the PR 3 tree (commit 91e61d7, heap engine + per-link records +
  construction caching, before the compiled fast path).

Rows:

* raw engine event dispatch (self-rescheduling ticks), both the
  handle-returning ``schedule`` path and the fire-and-forget ``call_at``
  path the packet hot loop uses — plus the same ticks run through an
  in-process replica of the PR 3 run loop, which turns the events/s
  claim into a machine-independent ratio;
* end-to-end packet simulation (the Figure 20 quartz-ecmp cell at
  30 Gb/s for 4 ms of simulated time);
* a 4-seed Figure 17 scatter mini-sweep: serial with the compiled fast
  path, serial with ``REPRO_FASTPATH_DISABLE=1`` (reference forwarding
  loop + per-packet draws), and ``workers=4``.

Acceptance gates (PR 4): ``call_at`` dispatch ≥ 1.5× PR 3 and the
fig17 mini-sweep ≥ 1.3× PR 3 wall-clock — asserted both against the
container constants and against the in-process PR 3 replica / reference
run, so the gate survives on machines of any speed.  Headline numbers
are merged into ``benchmarks/results/BENCH_simulator.json``.

PR 6 adds two rows: the specialized ``schedule`` path (which closes the
gap to ``call_at``), and the batched flight engine on a single-stream
cohort workload, gated ≥ 1.5× the scalar fast path as a same-machine
replica ratio (the batched and scalar runs execute in-process, back to
back, and must agree on every metric before the ratio is reported).
"""

import heapq
import os
import time

import repro.topology as T
from repro.experiments import figure17_sweep
from repro.experiments.pathological import run_pathological
from repro.routing import ECMPRouter
from repro.runner import ExperimentSpec, run_cells
from repro.sim import Network
from repro.sim.engine import Engine
from repro.sim.fastpath import FASTPATH_ENV
from repro.sim.parallel import ParallelScenario, SourceSpec, run_parallel, run_serial
from repro.sim.sources import PoissonSource
from repro.units import GBPS

# Baselines measured on this container.
SEED_ENGINE_EVENTS_PER_SEC = 869_611  # seed tree, commit 357d95d
SEED_PACKET_SIM_SECONDS = 0.73
SEED_SWEEP_SECONDS = 7.59
PR3_ENGINE_EVENTS_PER_SEC = 1_687_967  # PR 3 tree, commit 91e61d7
PR3_SWEEP_SECONDS = 3.80
# PR 6 tree, commit 4d489ba: the scalar fast path on the cohort
# workload, before the telemetry hooks existed.  The telemetry-off run
# must stay within noise of this (zero overhead when disabled).
PR6_COHORT_FASTPATH_EVENTS_PER_SEC = 697_425

TICKS = 200_000
SWEEP_TOPOLOGIES = ["three-tier tree", "quartz in edge and core"]
SWEEP_SEEDS = (0, 1, 2, 3)


class _PR3Engine:
    """Replica of the PR 3 run loop (commit 91e61d7), kept verbatim so
    the events/s gate can be expressed as a same-machine ratio instead
    of a container-speed constant."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[list] = []
        self._seq = 0
        self.events_processed = 0

    def call_at(self, time, callback, *args):
        heapq.heappush(self._heap, [time, self._seq, callback, args])
        self._seq += 1

    def run(self, until=None, max_events=None):
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        while heap:
            if max_events is not None and processed >= max_events:
                return
            entry = heap[0]
            if until is not None and entry[0] > until:
                break
            heappop(heap)
            callback = entry[2]
            if callback is None:
                continue
            entry[2] = None
            args = entry[3]
            self.now = entry[0]
            callback(*args)
            processed += 1
            self.events_processed += 1
        if until is not None and until > self.now:
            self.now = until


def _events_per_sec(engine_factory, use_call_at: bool = True, ticks: int = TICKS):
    """Dispatch rate of a self-rescheduling tick chain."""
    engine = engine_factory()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < ticks:
            if use_call_at:
                engine.call_at(engine.now + 1e-6, tick)
            else:
                engine.schedule(1e-6, tick)

    engine.call_at(0.0, tick)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return count / elapsed


#: Cohort benchmark: one 2 Mpps Poisson stream (≈ 6.4 Gb/s of 400 B
#: packets into 10 G links) for 50 ms of simulated time — long cohorts
#: with real intra-cohort port queueing.
COHORT_RATE_PPS = 2_000_000.0
COHORT_DURATION = 0.05


def _cohort_run(
    batch: bool, telemetry: bool = False, obs: bool = False
) -> tuple[float, tuple]:
    """One single-stream run; returns (wall seconds, metric fingerprint).

    ``telemetry`` arms the windowed monitors + INT stamping; ``obs``
    arms the :mod:`repro.obs` metrics registry + tracer for this run.
    The baselines pass both ``False`` explicitly so they stay clean
    even under ``REPRO_TELEMETRY=1`` / ``REPRO_OBS=1``.
    """
    topo = T.three_tier_tree()
    net = Network(topo, ECMPRouter(topo), batch=batch, telemetry=telemetry, obs=obs)
    servers = topo.servers()
    source = PoissonSource(
        net, servers[0], servers[-1], rate_pps=COHORT_RATE_PPS, seed=7,
        group="load",
    )
    source.start()
    start = time.perf_counter()
    net.engine.run(until=COHORT_DURATION)
    wall = time.perf_counter() - start
    fingerprint = (
        net.packets_delivered,
        net.packets_dropped,
        net.engine.events_processed,
        source.packets_sent,
        tuple(net.stats.samples),
    )
    return wall, fingerprint


def _cohort_events_per_sec() -> tuple[float, float, float, float, float, int]:
    """Batched, scalar, telemetry- and obs-armed rates on the cohort workload.

    All variants run in-process on the same machine and must produce
    bit-identical metrics; events/s counts the *logical* events (the
    scalar schedule's per-hop arrivals), which batching elides but
    credits, so the rates divide the same numerator.  The telemetry run
    arms monitors + stamping (batching stands down), asserting the
    observational layer changes no metric while its cost is measured.
    The obs run arms the :mod:`repro.obs` registry + tracer on the
    scalar path (every logical event through the instrumented engine
    loop) under the same identity assertion; its overhead ratio is
    measured *paired* — scalar and armed back to back within each
    round, best paired ratio taken — because the container drifts more
    between distant runs than the 1.3x gate allows for.
    """
    from repro import obs as obs_layer

    was_armed = obs_layer.armed()
    obs_layer.disarm()  # baselines must not pay the armed engine wrapper
    try:
        best_batch, fp_batch = min(_cohort_run(batch=True) for _ in range(3))
        best_scalar, fp_scalar = min(_cohort_run(batch=False) for _ in range(3))
        best_tele, fp_tele = min(
            _cohort_run(batch=True, telemetry=True) for _ in range(3)
        )
        best_obs = float("inf")
        obs_ratio = float("inf")
        for _ in range(3):
            scalar_wall, fp_pair = _cohort_run(batch=False)
            obs_layer.disarm()  # fresh registry/tracer per armed round
            obs_wall, fp_obs = _cohort_run(batch=False, obs=True)
            obs_layer.disarm()
            assert fp_obs == fp_pair, (
                "obs-armed run diverged (must be observational)"
            )
            best_obs = min(best_obs, obs_wall)
            obs_ratio = min(obs_ratio, obs_wall / scalar_wall)
    finally:
        obs_layer.disarm()
        if was_armed:
            obs_layer.arm()
    assert fp_batch == fp_scalar, "batched run diverged from the scalar fast path"
    assert fp_tele == fp_scalar, "telemetry-armed run diverged (must be observational)"
    assert fp_obs == fp_scalar, "obs-armed run diverged (must be observational)"
    events = fp_batch[2]
    return (
        events / best_batch,
        events / best_scalar,
        events / best_tele,
        events / best_obs,
        obs_ratio,
        events,
    )


def _time_sweep(workers: int) -> tuple[float, dict]:
    start = time.perf_counter()
    result = figure17_sweep(
        SWEEP_TOPOLOGIES, "scatter", [1, 2], seeds=SWEEP_SEEDS, workers=workers
    )
    return time.perf_counter() - start, result


def _noop_cell() -> None:
    return None


def _pool_spinup_seconds(workers: int, n_cells: int) -> float:
    """Wall clock of a pool round-trip over no-op cells.

    Same worker count and cell count as the mini-sweep, but every cell
    returns immediately — what remains is process start-up, initializer
    runs, and pickling, i.e. the pool's fixed overhead.  Subtracting it
    from the parallel sweep isolates the compute phase so the parallel
    gate prices the pool's marginal cost, not process creation.
    """
    cells = [ExperimentSpec(_noop_cell) for _ in range(n_cells)]
    start = time.perf_counter()
    run_cells(cells, workers=workers)
    return time.perf_counter() - start


def bench_engine_throughput(benchmark, report, bench_record):
    call_at_rate = benchmark.pedantic(
        lambda: _events_per_sec(Engine), rounds=3, iterations=1
    )
    # The container's throughput drifts on multi-second timescales, so
    # the replica ratio is measured *paired*: candidate and baseline
    # back to back within each round, best paired ratio taken.  A rate
    # gate should compare the engines, not whichever round a noisy
    # neighbour hit.
    call_at_rounds = [call_at_rate]
    pr3_rounds = [_events_per_sec(_PR3Engine)]
    for _ in range(5):
        call_at_rounds.append(_events_per_sec(Engine))
        pr3_rounds.append(_events_per_sec(_PR3Engine))
    call_at_rate = max(call_at_rounds)
    pr3_rate = min(pr3_rounds)
    engine_vs_pr3_replica = max(
        c / p for c, p in zip(call_at_rounds, pr3_rounds)
    )
    # The schedule-vs-call_at ratio is paired the same way: each round
    # measures both paths back to back, and the gate takes the best
    # paired ratio — container drift hits both paths of a pair equally.
    schedule_rounds = []
    call_at_paired = []
    for _ in range(3):
        call_at_paired.append(_events_per_sec(Engine))
        schedule_rounds.append(_events_per_sec(Engine, use_call_at=False))
    schedule_rate = max(schedule_rounds)
    schedule_vs_call_at_paired = max(
        s / c for s, c in zip(schedule_rounds, call_at_paired)
    )

    start = time.perf_counter()
    result = run_pathological("quartz-ecmp", 30 * GBPS, duration=0.004)
    sim_seconds = time.perf_counter() - start
    packets = result.summary.count

    _time_sweep(workers=1)  # warm-up: construction caches, imports
    sweep_serial, serial = _time_sweep(workers=1)
    # Best-of-3 wall clock: the serial sweep gate is a ~10% margin on a
    # shared CPU, so one preempted run must not flip it.
    for _ in range(2):
        retry_seconds, retry = _time_sweep(workers=1)
        if retry_seconds < sweep_serial:
            sweep_serial, serial = retry_seconds, retry
    sweep_spinup = min(_pool_spinup_seconds(4, 16) for _ in range(2))
    sweep_parallel, parallel = _time_sweep(workers=4)
    sweep_parallel_compute = max(0.0, sweep_parallel - sweep_spinup)
    assert {t: [p.mean_latency for p in pts] for t, pts in parallel.items()} == {
        t: [p.mean_latency for p in pts] for t, pts in serial.items()
    }
    # Reference forwarding loop + per-packet draws, in-process: the
    # same cells with the compiled fast path disabled must agree on
    # every metric and anchor a machine-independent speedup ratio.
    os.environ[FASTPATH_ENV] = "1"
    try:
        sweep_reference, reference = _time_sweep(workers=1)
    finally:
        del os.environ[FASTPATH_ENV]
    assert {t: [p.mean_latency for p in pts] for t, pts in reference.items()} == {
        t: [p.mean_latency for p in pts] for t, pts in serial.items()
    }

    (
        batched_rate, cohort_scalar_rate, telemetry_rate, obs_rate,
        obs_overhead_ratio, cohort_events,
    ) = _cohort_events_per_sec()

    engine_vs_pr3 = call_at_rate / PR3_ENGINE_EVENTS_PER_SEC
    schedule_vs_call_at = schedule_vs_call_at_paired
    batched_vs_fastpath = batched_rate / cohort_scalar_rate
    telemetry_overhead_ratio = cohort_scalar_rate / telemetry_rate
    telemetry_off_vs_pr6 = cohort_scalar_rate / PR6_COHORT_FASTPATH_EVENTS_PER_SEC
    sweep_vs_pr3 = PR3_SWEEP_SECONDS / sweep_serial
    sweep_vs_reference = sweep_reference / sweep_serial

    lines = [
        "Engine throughput: seed / PR 3 / compiled fast path",
        f"{'metric':<46}{'base':>12}{'now':>12}{'speedup':>9}",
        "-" * 79,
        f"{'raw engine, call_at vs seed (events/s)':<46}"
        f"{SEED_ENGINE_EVENTS_PER_SEC:>12,.0f}{call_at_rate:>12,.0f}"
        f"{call_at_rate / SEED_ENGINE_EVENTS_PER_SEC:>8.2f}x",
        f"{'raw engine, call_at vs PR 3 (events/s)':<46}"
        f"{PR3_ENGINE_EVENTS_PER_SEC:>12,.0f}{call_at_rate:>12,.0f}"
        f"{engine_vs_pr3:>8.2f}x",
        f"{'raw engine, call_at vs PR 3 replica (events/s)':<46}"
        f"{pr3_rate:>12,.0f}{call_at_rate:>12,.0f}"
        f"{engine_vs_pr3_replica:>8.2f}x",
        f"{'raw engine, schedule path (events/s)':<46}"
        f"{SEED_ENGINE_EVENTS_PER_SEC:>12,.0f}{schedule_rate:>12,.0f}"
        f"{schedule_rate / SEED_ENGINE_EVENTS_PER_SEC:>8.2f}x",
        f"{'raw engine, schedule vs call_at (events/s)':<46}"
        f"{call_at_rate:>12,.0f}{schedule_rate:>12,.0f}"
        f"{schedule_vs_call_at:>8.2f}x",
        f"{'cohort stream, batched vs fast path, ' + f'{cohort_events:,} ev':<46}"
        f"{cohort_scalar_rate:>12,.0f}{batched_rate:>12,.0f}"
        f"{batched_vs_fastpath:>8.2f}x",
        f"{'cohort stream, telemetry-off vs PR 6 (events/s)':<46}"
        f"{PR6_COHORT_FASTPATH_EVENTS_PER_SEC:>12,.0f}{cohort_scalar_rate:>12,.0f}"
        f"{telemetry_off_vs_pr6:>8.2f}x",
        f"{'cohort stream, telemetry armed (events/s)':<46}"
        f"{cohort_scalar_rate:>12,.0f}{telemetry_rate:>12,.0f}"
        f"{telemetry_rate / cohort_scalar_rate:>8.2f}x",
        f"{'cohort stream, obs armed (events/s)':<46}"
        f"{cohort_scalar_rate:>12,.0f}{obs_rate:>12,.0f}"
        f"{1.0 / obs_overhead_ratio:>8.2f}x",
        f"{'fig20 cell, 30G/4ms, ' + f'{packets:,} pkts (s)':<46}"
        f"{SEED_PACKET_SIM_SECONDS:>12.2f}{sim_seconds:>12.2f}"
        f"{SEED_PACKET_SIM_SECONDS / sim_seconds:>8.2f}x",
        f"{'fig17 mini-sweep, serial vs PR 3 (s)':<46}"
        f"{PR3_SWEEP_SECONDS:>12.2f}{sweep_serial:>12.2f}"
        f"{sweep_vs_pr3:>8.2f}x",
        f"{'fig17 mini-sweep, serial vs reference (s)':<46}"
        f"{sweep_reference:>12.2f}{sweep_serial:>12.2f}"
        f"{sweep_vs_reference:>8.2f}x",
        f"{'fig17 mini-sweep, workers=4 vs seed (s)':<46}"
        f"{SEED_SWEEP_SECONDS:>12.2f}{sweep_parallel:>12.2f}"
        f"{SEED_SWEEP_SECONDS / sweep_parallel:>8.2f}x",
        f"{'fig17 mini-sweep, workers=4 phases (s)':<46}"
        f"{sweep_spinup:>11.2f}s{sweep_parallel_compute:>11.2f}s"
        f"{'(spin/comp)':>11}",
        "",
        "Container baselines: seed tree at 357d95d, PR 3 tree at 91e61d7,",
        "both measured on this container.  The PR 3 replica row re-runs",
        "the identical tick chain through an in-process copy of the PR 3",
        "run loop, so that ratio is machine-independent.  The reference",
        "row re-runs the same sweep cells with REPRO_FASTPATH_DISABLE=1",
        "(uncompiled forwarding loop, per-packet RNG draws); its results",
        "are asserted identical to the fast-path run before reporting,",
        "as are the workers=4 results.  The cohort row runs one 2 Mpps",
        "Poisson stream for 50 ms of simulated time with the batched",
        "flight engine against the scalar fast path on this machine,",
        "asserts every metric identical, and divides the same logical",
        "event count by each wall clock — so that ratio, like the",
        "replica rows, is machine-independent.  The telemetry rows run",
        "the same cohort with monitors + INT stamping armed (batching",
        "stands down) and with telemetry off against the pre-hook PR 6",
        "container baseline: armed telemetry may cost, disabled",
        "telemetry may not.  The obs row re-runs the scalar cohort with",
        "the repro.obs registry + tracer armed, asserts bit-identical",
        "metrics, and gates the overhead at 1.3x — measured paired",
        "(scalar partner run in the same round) like the replica rows,",
        "since container drift between distant runs exceeds the margin.",
    ]
    report("engine_throughput", "\n".join(lines))
    bench_record(
        engine_events_per_sec_call_at=round(call_at_rate),
        engine_events_per_sec_schedule=round(schedule_rate),
        engine_events_per_sec_pr3_replica=round(pr3_rate),
        engine_events_per_sec_batched=round(batched_rate),
        engine_events_per_sec_cohort_fastpath=round(cohort_scalar_rate),
        engine_events_per_sec_cohort_telemetry=round(telemetry_rate),
        engine_events_per_sec_cohort_obs=round(obs_rate),
        telemetry_overhead_ratio=round(telemetry_overhead_ratio, 3),
        obs_overhead_ratio=round(obs_overhead_ratio, 3),
        telemetry_off_vs_pr6=round(telemetry_off_vs_pr6, 3),
        engine_speedup_vs_pr3=round(engine_vs_pr3, 3),
        engine_speedup_vs_pr3_replica=round(engine_vs_pr3_replica, 3),
        schedule_ratio_vs_call_at=round(schedule_vs_call_at, 3),
        batched_speedup_vs_fastpath=round(batched_vs_fastpath, 3),
        fig20_cell_seconds=round(sim_seconds, 3),
        fig17_mini_sweep_serial_seconds=round(sweep_serial, 3),
        fig17_mini_sweep_reference_seconds=round(sweep_reference, 3),
        fig17_mini_sweep_parallel_seconds=round(sweep_parallel, 3),
        fig17_mini_sweep_parallel_spinup_seconds=round(sweep_spinup, 3),
        fig17_mini_sweep_parallel_compute_seconds=round(
            sweep_parallel_compute, 3
        ),
        fig17_sweep_speedup_vs_pr3=round(sweep_vs_pr3, 3),
        fig17_sweep_speedup_vs_reference=round(sweep_vs_reference, 3),
    )

    # Acceptance gates (PR 4), both as container constants and as
    # same-machine ratios: ≥ 1.5x events/s and ≥ 1.3x sweep wall-clock
    # over the PR 3 baseline.  The seed gate from PR 1 still holds.
    assert call_at_rate >= 1.3 * SEED_ENGINE_EVENTS_PER_SEC
    assert call_at_rate >= 1.5 * PR3_ENGINE_EVENTS_PER_SEC
    assert engine_vs_pr3_replica >= 1.5
    assert sweep_serial <= PR3_SWEEP_SECONDS / 1.3
    assert sweep_vs_reference >= 1.2, "fast path should beat the reference loop"
    # PR 8 gate: the parallel mini-sweep, net of pool spin-up, must stay
    # within 40% of the serial wall clock.  The sweep is short and the
    # CI container may expose a single CPU, so a *speedup* gate would be
    # dishonest — what the gate holds is that fanning out costs at most
    # IPC + timesharing overhead (the old one-chunk-per-four regression
    # showed up as ~1.75x serial here).
    assert sweep_parallel_compute <= 1.4 * sweep_serial, (
        f"parallel compute {sweep_parallel_compute:.2f}s vs serial"
        f" {sweep_serial:.2f}s"
    )
    # PR 6 gates, floor raised in PR 8: the specialized schedule path
    # must stay within striking distance of call_at (it used to trail
    # 2.8x, then 1.8x; the Event handle is now built by inlined __new__
    # + slot stores, leaving only the allocation itself).  The ratio is
    # measured paired, so the floor is a property of the two code paths,
    # not of container load.  The batched flight engine must clear 1.5x
    # over the scalar fast path as a same-machine replica ratio on the
    # cohort workload.
    assert schedule_vs_call_at >= 0.55, "schedule path regressed vs call_at"
    assert schedule_rate >= 1.5 * SEED_ENGINE_EVENTS_PER_SEC
    assert batched_vs_fastpath >= 1.5, "batched engine below the 1.5x gate"
    # PR 7 gate: zero overhead when disabled.  With telemetry off the
    # dormant hooks are one attribute load + None test per hop —
    # interleaved pre/post-hook runs measure no difference.  The
    # container itself drifts ±20% between sessions, so the constant
    # gate gets a 0.6 floor: loose enough to ride out drift, tight
    # enough to catch telemetry accidentally armed by default (which
    # halves the rate and lands well below it).  Armed telemetry is
    # allowed to cost, but not more than 2x on this worst-case (every
    # packet monitored and stamped) workload — the floor-index is now
    # computed once per enqueue and single-window residencies (all of
    # them, on this workload) skip the boundary walk, which brought the
    # ratio from ~2.1x down to ~1.9x.
    assert telemetry_off_vs_pr6 >= 0.6, (
        f"telemetry hooks slowed the disabled path: {telemetry_off_vs_pr6:.2f}x PR 6"
    )
    assert telemetry_overhead_ratio <= 2.0, (
        f"armed telemetry overhead {telemetry_overhead_ratio:.2f}x exceeds 2x"
    )
    # PR 10 gate: the armed observability layer records aggregate deltas
    # once per engine run (never per event), plan-cache counters on the
    # compile/miss paths only, and one span per run — so even on this
    # worst-case workload (every logical event through the scalar loop)
    # arming must cost at most 1.3x.  Disarmed runs pay one module-level
    # None test per run and are fingerprint-identical by assertion.
    assert obs_overhead_ratio <= 1.3, (
        f"armed obs overhead {obs_overhead_ratio:.2f}x exceeds 1.3x"
    )


#: Sharded-DES benchmark: the paper's full 1056-port element (33 ULL
#: switches x 4 modelled servers), every server streaming Poisson
#: traffic for 10 ms of simulated time.  The four servers per rack
#: stream to racks 1, 2, 5 and 16 away — the locality mix the paper's
#: evaluation emphasizes (Figures 17/18): most traffic stays near its
#: rack and forwards batched inside one shard, while the antipodal
#: flows keep every boundary channel busy across the cut.  Propagation
#: is raised to 2.5 us — ring-scale fibre runs between racks, not
#: patch cables — which also sets the conservative lookahead (ULL
#: latency + propagation ≈ 2.9 us per window).
PARALLEL_SHARDS = 2
PARALLEL_RACKS = 33
PARALLEL_SERVERS = 4
PARALLEL_OFFSETS = (1, 2, 5, 16)
PARALLEL_RATE_PPS = 200_000.0
PARALLEL_DURATION = 0.01
PARALLEL_PROPAGATION = 2.5e-6


def _parallel_scenario() -> ParallelScenario:
    specs = []
    for rack in range(PARALLEL_RACKS):
        for server in range(PARALLEL_SERVERS):
            offset = PARALLEL_OFFSETS[server]
            specs.append(
                SourceSpec(
                    src=f"h{rack}.{server}",
                    dst=f"h{(rack + offset) % PARALLEL_RACKS}.{server}",
                    rate_pps=PARALLEL_RATE_PPS,
                    group=f"g{rack % 2}",
                    flow_id=rack * PARALLEL_SERVERS + server,
                    seed=rack * PARALLEL_SERVERS + server,
                )
            )
    return ParallelScenario(
        fabric="quartz-ring",
        fabric_args=(PARALLEL_RACKS, PARALLEL_SERVERS),
        sources=tuple(specs),
        duration=PARALLEL_DURATION,
        propagation_delay=PARALLEL_PROPAGATION,
    )


def bench_parallel_shards(benchmark, report, bench_record):
    """Conservative-window sharded DES vs the serial reference.

    Both parallel runs must first reproduce the serial fingerprint
    bit-for-bit; only then is their cost reported.  The *gate* is on
    the critical-path compute phase in **inline** mode (shards stepped
    sequentially in this process): max-shard-CPU / serial-CPU measures
    how well the partitioner divided the work, and sequential stepping
    keeps it honest on a 1-CPU CI container — two worker *processes*
    timesharing one core evict each other's caches, and that thrash
    lands in their ``process_time`` (measured here at ~1.6x), which
    would make a process-mode CPU gate report the container's core
    count rather than the partitioner's quality.  The **process** run
    is reported as the advisory deployment phase split: spin-up (pool
    + per-shard fabric build), compute (max worker CPU inside
    ``engine.run``), and barrier (window coordination + pickling).
    """
    scenario = _parallel_scenario()
    serial = benchmark.pedantic(
        lambda: run_serial(scenario), rounds=1, iterations=1
    )
    inline = run_parallel(
        scenario, num_shards=PARALLEL_SHARDS, mode="inline", parallel=True
    )
    assert inline.fingerprint() == serial.fingerprint(), (
        "inline sharded run diverged from the serial reference"
    )
    process = run_parallel(
        scenario, num_shards=PARALLEL_SHARDS, mode="process", parallel=True
    )
    assert process.fingerprint() == serial.fingerprint(), (
        "process sharded run diverged from the serial reference"
    )

    compute_speedup = serial.compute_seconds / inline.compute_seconds
    process_speedup = serial.compute_seconds / process.compute_seconds
    lines = [
        "Sharded DES: 1056-port element, conservative windows",
        f"{'metric':<40}{'serial':>12}{'inline x2':>13}{'process x2':>13}",
        "-" * 78,
        f"{'packets delivered':<40}{serial.packets_delivered:>12,}"
        f"{inline.packets_delivered:>13,}{process.packets_delivered:>13,}",
        f"{'logical events':<40}{serial.events_processed:>12,}"
        f"{inline.events_processed:>13,}{process.events_processed:>13,}",
        f"{'windows':<40}{'-':>12}{inline.windows:>13,}"
        f"{process.windows:>13,}",
        f"{'boundary messages':<40}{'-':>12}{inline.boundary_messages:>13,}"
        f"{process.boundary_messages:>13,}",
        f"{'lookahead (us)':<40}{'inf':>12}"
        f"{inline.lookahead * 1e6:>13.2f}{process.lookahead * 1e6:>13.2f}",
        f"{'wall clock (s)':<40}{serial.wall_seconds:>12.2f}"
        f"{inline.wall_seconds:>13.2f}{process.wall_seconds:>13.2f}",
        f"{'spin-up phase (s)':<40}{'-':>12}"
        f"{inline.spinup_seconds:>13.2f}{process.spinup_seconds:>13.2f}",
        f"{'compute phase, max shard CPU (s)':<40}"
        f"{serial.compute_seconds:>12.2f}"
        f"{inline.compute_seconds:>13.2f}{process.compute_seconds:>13.2f}",
        f"{'barrier phase (s)':<40}{'-':>12}"
        f"{inline.barrier_seconds:>13.2f}{process.barrier_seconds:>13.2f}",
        f"{'compute-phase speedup':<40}{'1.00x':>12}"
        f"{f'{compute_speedup:.2f}x':>13}{f'{process_speedup:.2f}x':>13}",
        "",
        "Fingerprints (counters, packet ids, event counts, every latency",
        "sample, per-port state, per-flow fault stats) are asserted",
        "identical before any number above is reported.  The gate is the",
        "inline column: shards stepped sequentially in one process, so",
        "max-shard-CPU / serial-CPU measures the partitioner's division",
        "of work without the cache thrash two worker processes inflict",
        "on each other while timesharing a 1-CPU container (that thrash",
        "is visible above as the process column's higher compute CPU).",
        "The process column is the deployment story: spin-up pays pool",
        "start + per-shard fabric build once, barrier pays per-window",
        "inbox exchange + pickling, and on a multi-core host the wall",
        "clock tracks its compute column.",
    ]
    report("parallel_shards", "\n".join(lines))
    bench_record(
        parallel_shards=PARALLEL_SHARDS,
        parallel_windows=process.windows,
        parallel_boundary_messages=process.boundary_messages,
        parallel_lookahead_us=round(process.lookahead * 1e6, 3),
        parallel_serial_seconds=round(serial.compute_seconds, 3),
        parallel_compute_seconds=round(inline.compute_seconds, 3),
        parallel_compute_speedup=round(compute_speedup, 3),
        parallel_process_wall_seconds=round(process.wall_seconds, 3),
        parallel_process_spinup_seconds=round(process.spinup_seconds, 3),
        parallel_process_compute_seconds=round(process.compute_seconds, 3),
        parallel_process_barrier_seconds=round(process.barrier_seconds, 3),
        parallel_process_compute_speedup=round(process_speedup, 3),
    )

    # Gate: splitting the element across 2 shards must cut the critical
    # path's CPU burn by >= 1.5x (perfect balance would be 2x; rack 17
    # vs 16 imbalance plus boundary recompilation costs the rest).
    assert compute_speedup >= 1.5, (
        f"compute-phase speedup {compute_speedup:.2f}x below the 1.5x gate"
    )
