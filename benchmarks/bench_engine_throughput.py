"""Engine and sweep throughput: the hot-path trajectory across PRs.

Measures the levels the successive overhauls targeted and renders them
against two baselines measured on this container:

* the seed tree (commit 357d95d, before any engine work);
* the PR 3 tree (commit 91e61d7, heap engine + per-link records +
  construction caching, before the compiled fast path).

Rows:

* raw engine event dispatch (self-rescheduling ticks), both the
  handle-returning ``schedule`` path and the fire-and-forget ``call_at``
  path the packet hot loop uses — plus the same ticks run through an
  in-process replica of the PR 3 run loop, which turns the events/s
  claim into a machine-independent ratio;
* end-to-end packet simulation (the Figure 20 quartz-ecmp cell at
  30 Gb/s for 4 ms of simulated time);
* a 4-seed Figure 17 scatter mini-sweep: serial with the compiled fast
  path, serial with ``REPRO_FASTPATH_DISABLE=1`` (reference forwarding
  loop + per-packet draws), and ``workers=4``.

Acceptance gates (PR 4): ``call_at`` dispatch ≥ 1.5× PR 3 and the
fig17 mini-sweep ≥ 1.3× PR 3 wall-clock — asserted both against the
container constants and against the in-process PR 3 replica / reference
run, so the gate survives on machines of any speed.  Headline numbers
are merged into ``benchmarks/results/BENCH_simulator.json``.
"""

import heapq
import os
import time

from repro.experiments import figure17_sweep
from repro.experiments.pathological import run_pathological
from repro.sim.engine import Engine
from repro.sim.fastpath import FASTPATH_ENV
from repro.units import GBPS

# Baselines measured on this container.
SEED_ENGINE_EVENTS_PER_SEC = 869_611  # seed tree, commit 357d95d
SEED_PACKET_SIM_SECONDS = 0.73
SEED_SWEEP_SECONDS = 7.59
PR3_ENGINE_EVENTS_PER_SEC = 1_687_967  # PR 3 tree, commit 91e61d7
PR3_SWEEP_SECONDS = 3.80

TICKS = 200_000
SWEEP_TOPOLOGIES = ["three-tier tree", "quartz in edge and core"]
SWEEP_SEEDS = (0, 1, 2, 3)


class _PR3Engine:
    """Replica of the PR 3 run loop (commit 91e61d7), kept verbatim so
    the events/s gate can be expressed as a same-machine ratio instead
    of a container-speed constant."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[list] = []
        self._seq = 0
        self.events_processed = 0

    def call_at(self, time, callback, *args):
        heapq.heappush(self._heap, [time, self._seq, callback, args])
        self._seq += 1

    def run(self, until=None, max_events=None):
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        while heap:
            if max_events is not None and processed >= max_events:
                return
            entry = heap[0]
            if until is not None and entry[0] > until:
                break
            heappop(heap)
            callback = entry[2]
            if callback is None:
                continue
            entry[2] = None
            args = entry[3]
            self.now = entry[0]
            callback(*args)
            processed += 1
            self.events_processed += 1
        if until is not None and until > self.now:
            self.now = until


def _events_per_sec(engine_factory, use_call_at: bool = True, ticks: int = TICKS):
    """Dispatch rate of a self-rescheduling tick chain."""
    engine = engine_factory()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < ticks:
            if use_call_at:
                engine.call_at(engine.now + 1e-6, tick)
            else:
                engine.schedule(1e-6, tick)

    engine.call_at(0.0, tick)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return count / elapsed


def _time_sweep(workers: int) -> tuple[float, dict]:
    start = time.perf_counter()
    result = figure17_sweep(
        SWEEP_TOPOLOGIES, "scatter", [1, 2], seeds=SWEEP_SEEDS, workers=workers
    )
    return time.perf_counter() - start, result


def bench_engine_throughput(benchmark, report, bench_record):
    call_at_rate = benchmark.pedantic(
        lambda: _events_per_sec(Engine), rounds=3, iterations=1
    )
    schedule_rate = _events_per_sec(Engine, use_call_at=False)
    pr3_rate = min(_events_per_sec(_PR3Engine) for _ in range(3))

    start = time.perf_counter()
    result = run_pathological("quartz-ecmp", 30 * GBPS, duration=0.004)
    sim_seconds = time.perf_counter() - start
    packets = result.summary.count

    _time_sweep(workers=1)  # warm-up: construction caches, imports
    sweep_serial, serial = _time_sweep(workers=1)
    sweep_parallel, parallel = _time_sweep(workers=4)
    assert {t: [p.mean_latency for p in pts] for t, pts in parallel.items()} == {
        t: [p.mean_latency for p in pts] for t, pts in serial.items()
    }
    # Reference forwarding loop + per-packet draws, in-process: the
    # same cells with the compiled fast path disabled must agree on
    # every metric and anchor a machine-independent speedup ratio.
    os.environ[FASTPATH_ENV] = "1"
    try:
        sweep_reference, reference = _time_sweep(workers=1)
    finally:
        del os.environ[FASTPATH_ENV]
    assert {t: [p.mean_latency for p in pts] for t, pts in reference.items()} == {
        t: [p.mean_latency for p in pts] for t, pts in serial.items()
    }

    engine_vs_pr3 = call_at_rate / PR3_ENGINE_EVENTS_PER_SEC
    engine_vs_pr3_replica = call_at_rate / pr3_rate
    sweep_vs_pr3 = PR3_SWEEP_SECONDS / sweep_serial
    sweep_vs_reference = sweep_reference / sweep_serial

    lines = [
        "Engine throughput: seed / PR 3 / compiled fast path",
        f"{'metric':<46}{'base':>12}{'now':>12}{'speedup':>9}",
        "-" * 79,
        f"{'raw engine, call_at vs seed (events/s)':<46}"
        f"{SEED_ENGINE_EVENTS_PER_SEC:>12,.0f}{call_at_rate:>12,.0f}"
        f"{call_at_rate / SEED_ENGINE_EVENTS_PER_SEC:>8.2f}x",
        f"{'raw engine, call_at vs PR 3 (events/s)':<46}"
        f"{PR3_ENGINE_EVENTS_PER_SEC:>12,.0f}{call_at_rate:>12,.0f}"
        f"{engine_vs_pr3:>8.2f}x",
        f"{'raw engine, call_at vs PR 3 replica (events/s)':<46}"
        f"{pr3_rate:>12,.0f}{call_at_rate:>12,.0f}"
        f"{engine_vs_pr3_replica:>8.2f}x",
        f"{'raw engine, schedule path (events/s)':<46}"
        f"{SEED_ENGINE_EVENTS_PER_SEC:>12,.0f}{schedule_rate:>12,.0f}"
        f"{schedule_rate / SEED_ENGINE_EVENTS_PER_SEC:>8.2f}x",
        f"{'fig20 cell, 30G/4ms, ' + f'{packets:,} pkts (s)':<46}"
        f"{SEED_PACKET_SIM_SECONDS:>12.2f}{sim_seconds:>12.2f}"
        f"{SEED_PACKET_SIM_SECONDS / sim_seconds:>8.2f}x",
        f"{'fig17 mini-sweep, serial vs PR 3 (s)':<46}"
        f"{PR3_SWEEP_SECONDS:>12.2f}{sweep_serial:>12.2f}"
        f"{sweep_vs_pr3:>8.2f}x",
        f"{'fig17 mini-sweep, serial vs reference (s)':<46}"
        f"{sweep_reference:>12.2f}{sweep_serial:>12.2f}"
        f"{sweep_vs_reference:>8.2f}x",
        f"{'fig17 mini-sweep, workers=4 vs seed (s)':<46}"
        f"{SEED_SWEEP_SECONDS:>12.2f}{sweep_parallel:>12.2f}"
        f"{SEED_SWEEP_SECONDS / sweep_parallel:>8.2f}x",
        "",
        "Container baselines: seed tree at 357d95d, PR 3 tree at 91e61d7,",
        "both measured on this container.  The PR 3 replica row re-runs",
        "the identical tick chain through an in-process copy of the PR 3",
        "run loop, so that ratio is machine-independent.  The reference",
        "row re-runs the same sweep cells with REPRO_FASTPATH_DISABLE=1",
        "(uncompiled forwarding loop, per-packet RNG draws); its results",
        "are asserted identical to the fast-path run before reporting,",
        "as are the workers=4 results.",
    ]
    report("engine_throughput", "\n".join(lines))
    bench_record(
        engine_events_per_sec_call_at=round(call_at_rate),
        engine_events_per_sec_schedule=round(schedule_rate),
        engine_events_per_sec_pr3_replica=round(pr3_rate),
        engine_speedup_vs_pr3=round(engine_vs_pr3, 3),
        engine_speedup_vs_pr3_replica=round(engine_vs_pr3_replica, 3),
        fig20_cell_seconds=round(sim_seconds, 3),
        fig17_mini_sweep_serial_seconds=round(sweep_serial, 3),
        fig17_mini_sweep_reference_seconds=round(sweep_reference, 3),
        fig17_mini_sweep_parallel_seconds=round(sweep_parallel, 3),
        fig17_sweep_speedup_vs_pr3=round(sweep_vs_pr3, 3),
        fig17_sweep_speedup_vs_reference=round(sweep_vs_reference, 3),
    )

    # Acceptance gates (PR 4), both as container constants and as
    # same-machine ratios: ≥ 1.5x events/s and ≥ 1.3x sweep wall-clock
    # over the PR 3 baseline.  The seed gate from PR 1 still holds.
    assert call_at_rate >= 1.3 * SEED_ENGINE_EVENTS_PER_SEC
    assert call_at_rate >= 1.5 * PR3_ENGINE_EVENTS_PER_SEC
    assert call_at_rate >= 1.5 * pr3_rate
    assert sweep_serial <= PR3_SWEEP_SECONDS / 1.3
    assert sweep_vs_reference >= 1.2, "fast path should beat the reference loop"
