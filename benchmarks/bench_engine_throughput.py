"""Engine and sweep throughput: before/after the hot-path overhaul.

Measures the three levels the overhaul targeted and renders them against
the seed-tree baselines (measured on this container at commit 357d95d,
before the rewrite):

* raw engine event dispatch (self-rescheduling ticks), both the
  handle-returning ``schedule`` path and the fire-and-forget ``call_at``
  path the packet hot loop uses;
* end-to-end packet simulation (the Figure 20 quartz-ecmp cell at
  30 Gb/s for 4 ms of simulated time);
* a 4-seed Figure 17 scatter mini-sweep, serial and ``workers=4``.

The acceptance gate asserts the hot-path dispatch rate at ≥ 1.3× seed.
"""

import time

from repro.experiments import figure17_sweep
from repro.experiments.pathological import run_pathological
from repro.sim.engine import Engine
from repro.units import GBPS

# Seed-tree baselines, measured on this container before the overhaul.
SEED_ENGINE_EVENTS_PER_SEC = 869_611
SEED_PACKET_SIM_SECONDS = 0.73
SEED_SWEEP_SECONDS = 7.59

TICKS = 200_000
SWEEP_TOPOLOGIES = ["three-tier tree", "quartz in edge and core"]
SWEEP_SEEDS = (0, 1, 2, 3)


def _events_per_sec(use_call_at: bool, ticks: int = TICKS) -> float:
    """Dispatch rate of a self-rescheduling tick chain."""
    engine = Engine()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < ticks:
            if use_call_at:
                engine.call_at(engine.now + 1e-6, tick)
            else:
                engine.schedule(1e-6, tick)

    engine.call_at(0.0, tick)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return count / elapsed


def bench_engine_throughput(benchmark, report):
    call_at_rate = benchmark.pedantic(
        lambda: _events_per_sec(use_call_at=True), rounds=3, iterations=1
    )
    schedule_rate = _events_per_sec(use_call_at=False)

    start = time.perf_counter()
    result = run_pathological("quartz-ecmp", 30 * GBPS, duration=0.004)
    sim_seconds = time.perf_counter() - start
    packets = result.summary.count

    start = time.perf_counter()
    serial = figure17_sweep(
        SWEEP_TOPOLOGIES, "scatter", [1, 2], seeds=SWEEP_SEEDS, workers=1
    )
    sweep_serial = time.perf_counter() - start
    start = time.perf_counter()
    parallel = figure17_sweep(
        SWEEP_TOPOLOGIES, "scatter", [1, 2], seeds=SWEEP_SEEDS, workers=4
    )
    sweep_parallel = time.perf_counter() - start
    assert {t: [p.mean_latency for p in pts] for t, pts in parallel.items()} == {
        t: [p.mean_latency for p in pts] for t, pts in serial.items()
    }

    lines = [
        "Engine throughput: seed tree vs hot-path overhaul",
        f"{'metric':<44}{'seed':>12}{'now':>12}{'speedup':>9}",
        "-" * 77,
        f"{'raw engine, call_at path (events/s)':<44}"
        f"{SEED_ENGINE_EVENTS_PER_SEC:>12,.0f}{call_at_rate:>12,.0f}"
        f"{call_at_rate / SEED_ENGINE_EVENTS_PER_SEC:>8.2f}x",
        f"{'raw engine, schedule path (events/s)':<44}"
        f"{SEED_ENGINE_EVENTS_PER_SEC:>12,.0f}{schedule_rate:>12,.0f}"
        f"{schedule_rate / SEED_ENGINE_EVENTS_PER_SEC:>8.2f}x",
        f"{'fig20 cell, 30G/4ms, ' + f'{packets:,} pkts (s)':<44}"
        f"{SEED_PACKET_SIM_SECONDS:>12.2f}{sim_seconds:>12.2f}"
        f"{SEED_PACKET_SIM_SECONDS / sim_seconds:>8.2f}x",
        f"{'fig17 mini-sweep, serial (s)':<44}"
        f"{SEED_SWEEP_SECONDS:>12.2f}{sweep_serial:>12.2f}"
        f"{SEED_SWEEP_SECONDS / sweep_serial:>8.2f}x",
        f"{'fig17 mini-sweep, workers=4 (s)':<44}"
        f"{SEED_SWEEP_SECONDS:>12.2f}{sweep_parallel:>12.2f}"
        f"{SEED_SWEEP_SECONDS / sweep_parallel:>8.2f}x",
        "",
        "Seed numbers were measured on this container at the pre-overhaul",
        "tree (commit 357d95d).  The two sweep rows time the same cells;",
        "on a multi-core box the workers=4 row additionally divides by the",
        "core count, but this container exposes a single CPU, so its gain",
        "over the serial row is negligible and the recorded speedup comes",
        "from the hot-path and routing work.  Parallel and serial sweep",
        "results are asserted identical before reporting.",
    ]
    report("engine_throughput", "\n".join(lines))

    # Acceptance gate: the dispatch path the packet hot loop uses must be
    # at least 1.3x the seed engine.
    assert call_at_rate >= 1.3 * SEED_ENGINE_EVENTS_PER_SEC
