"""Figure 6: bandwidth loss and partition probability under fibre failures.

Monte-Carlo over random fibre-segment failures on a 33-switch Quartz
element with one to four parallel physical rings.  Asserts the paper's
headline numbers: a single-ring failure costs ~20–26 % of the direct
channels, four rings cut that to ~6 %, and with two rings even four
simultaneous failures partition the network with probability well under
one percent-ish (paper: 0.0024).
"""

from repro.core.channels import greedy_assignment
from repro.core.fault import RingFaultModel


def bench_fig06_failure_grid(benchmark, report):
    plan = greedy_assignment(33)

    def run():
        grid = {}
        for rings in (1, 2, 3, 4):
            model = RingFaultModel(33, rings, plan)
            for failures in (1, 2, 3, 4):
                grid[(rings, failures)] = model.simulate(
                    failures, trials=400, seed=11
                )
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Figure 6 (top): fraction of aggregate bandwidth lost"]
    label = "rings / failures"
    header = f"{label:>16}" + "".join(f"{f:>8}" for f in (1, 2, 3, 4))
    lines += [header, "-" * len(header)]
    for rings in (1, 2, 3, 4):
        row = f"{rings:>16}" + "".join(
            f"{grid[(rings, f)].bandwidth_loss:>8.3f}" for f in (1, 2, 3, 4)
        )
        lines.append(row)
    lines.append("")
    lines.append("Figure 6 (bottom): probability of network partition")
    lines += [header, "-" * len(header)]
    for rings in (1, 2, 3, 4):
        row = f"{rings:>16}" + "".join(
            f"{grid[(rings, f)].partition_probability:>8.4f}" for f in (1, 2, 3, 4)
        )
        lines.append(row)
    report("fig06_fault_tolerance", "\n".join(lines))

    # Paper reference points.
    assert 0.15 <= grid[(1, 1)].bandwidth_loss <= 0.35  # ~20 % quoted
    assert 0.03 <= grid[(4, 1)].bandwidth_loss <= 0.10  # ~6 % quoted
    assert grid[(1, 2)].partition_probability >= 0.9  # two cuts split one ring
    assert grid[(2, 4)].partition_probability < 0.03  # 0.0024 quoted
    # Monotonicity: more rings, less loss.
    for failures in (1, 2, 3, 4):
        losses = [grid[(r, failures)].bandwidth_loss for r in (1, 2, 3, 4)]
        assert losses == sorted(losses, reverse=True)
