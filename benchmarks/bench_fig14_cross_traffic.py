"""Figure 14: impact of cross-traffic on the 4-switch prototype.

Normalized RPC latency versus bursty cross-traffic rate for the two
wirings of the same four switches: a two-tier tree and a Quartz mesh.
The paper measured 0–200 Mb/s on hardware (TCP/Nuttcp); its tree rose
>70 % while Quartz stayed flat.  Our packet-level burst model needs a
higher nominal load before queueing at the shared uplink bites (no TCP
window compounding), so the sweep extends to 800 Mb/s: the *shape* —
tree rising superlinearly, Quartz flat — is the reproduced claim, with
the crossover shifted right (see EXPERIMENTS.md).
"""

from repro.textplot import Series, line_chart
from repro.units import MBPS
from repro.workloads.crosstraffic import normalized_latency_curve

LEVELS = [100 * MBPS, 200 * MBPS, 400 * MBPS, 600 * MBPS, 800 * MBPS]


def bench_fig14(benchmark, report):
    def run():
        return {
            topology: normalized_latency_curve(topology, LEVELS, num_calls=400)
            for topology in ("tree", "quartz")
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    header = f"{'cross-traffic':>14}" + "".join(
        f"{level / MBPS:>9.0f}M" for level, _ in curves["tree"]
    )
    lines = [
        "Figure 14: normalized RPC latency vs cross-traffic",
        header,
        "-" * len(header),
    ]
    for topology, curve in curves.items():
        lines.append(
            f"{topology:>14}" + "".join(f"{norm:>10.3f}" for _, norm in curve)
        )
    chart = line_chart(
        [
            Series(topology, tuple((lvl / MBPS, norm) for lvl, norm in curve))
            for topology, curve in curves.items()
        ],
        x_label="cross-traffic (Mb/s)",
        y_label="normalized RPC latency",
    )
    report("fig14_cross_traffic", "\n".join(lines) + "\n\n" + chart)

    tree_final = curves["tree"][-1][1]
    quartz_final = curves["quartz"][-1][1]
    # Tree latency rises substantially; Quartz is essentially unaffected.
    assert tree_final > 1.5
    assert quartz_final < 1.15
    # Tree is monotonically non-decreasing with load (within noise).
    tree_norms = [norm for _, norm in curves["tree"]]
    assert tree_norms[-1] > tree_norms[1]
    # At every load level the tree suffers at least as much as Quartz.
    for (_, tree_norm), (_, quartz_norm) in zip(curves["tree"], curves["quartz"]):
        assert tree_norm >= quartz_norm - 0.02
