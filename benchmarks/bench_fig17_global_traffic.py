"""Figure 17: average packet latency, global traffic patterns.

Scatter (a), gather (b), and scatter/gather (c) tasks with randomly
placed participants across five architectures.  Asserts the paper's
findings: the three-tier tree is the slowest (its core switch dominates);
Quartz in the core removes >3 µs; Quartz in the edge beats the tree via
intra-ring paths; Quartz in edge+core roughly halves latency; Jellyfish
is fast on global patterns; and latency never *decreases* as tasks are
added.
"""

from repro.experiments import figure17_sweep, format_sweep
from repro.runner import default_workers
from repro.textplot import line_chart, sweep_to_series

#: Sweep cells fan out over this many processes (REPRO_WORKERS to pin);
#: the results are bit-identical to a serial run.
WORKERS = default_workers()


def _render(series, title):
    table = format_sweep(series, title)
    chart = line_chart(
        sweep_to_series(series), title="", x_label="tasks", y_label="us/packet"
    )
    return f"{table}\n\n{chart}"

TOPOLOGIES = [
    "three-tier tree",
    "jellyfish",
    "quartz in core",
    "quartz in edge",
    "quartz in edge and core",
]


def _final_means(series):
    return {topo: points[-1].mean_latency for topo, points in series.items()}


def _first_means(series):
    return {topo: points[0].mean_latency for topo, points in series.items()}


def _assert_paper_shape(series):
    first = _first_means(series)
    final = _final_means(series)
    tree = "three-tier tree"
    # The tree is the slowest architecture at every task count.
    for topology in TOPOLOGIES:
        if topology != tree:
            assert final[topology] < final[tree]
    # "More than a three microsecond reduction in latency by replacing
    # the core switches in a three-tier tree with Quartz rings."
    assert first[tree] - first["quartz in core"] > 3e-6
    # "Using Quartz in the edge reduces the absolute latency compared to
    # the three-tier tree even with only one task."
    assert first["quartz in edge"] < first[tree]
    # "Using Quartz in both the edge and core reduces latency by nearly
    # half compared to the three-tier tree."
    assert final["quartz in edge and core"] <= 0.65 * final[tree]
    # Latency is non-decreasing in the number of tasks (within 5 % noise).
    for points in series.values():
        means = [p.mean_latency for p in points]
        for before, after in zip(means, means[1:]):
            assert after >= before * 0.95


def bench_fig17a_scatter(benchmark, report):
    series = benchmark.pedantic(
        lambda: figure17_sweep(TOPOLOGIES, "scatter", [1, 2, 4, 8], workers=WORKERS),
        rounds=1, iterations=1,
    )
    report("fig17a_scatter", _render(series, "Figure 17(a): global scatter (us)"))
    _assert_paper_shape(series)


def bench_fig17b_gather(benchmark, report):
    series = benchmark.pedantic(
        lambda: figure17_sweep(TOPOLOGIES, "gather", [1, 2, 4, 8], workers=WORKERS),
        rounds=1, iterations=1,
    )
    report("fig17b_gather", _render(series, "Figure 17(b): global gather (us)"))
    _assert_paper_shape(series)


def bench_fig17c_scatter_gather(benchmark, report):
    series = benchmark.pedantic(
        lambda: figure17_sweep(TOPOLOGIES, "scatter_gather", [1, 2, 4], workers=WORKERS),
        rounds=1, iterations=1,
    )
    report(
        "fig17c_scatter_gather",
        _render(series, "Figure 17(c): global scatter/gather (us)"),
    )
    _assert_paper_shape(series)
