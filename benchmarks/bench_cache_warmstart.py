"""Cold vs warm artifact cache for the Figure 10 and scaling sweeps.

The tentpole's acceptance benchmark: run the same sweep workload twice
against one on-disk artifact store — first cold (empty store), then
warm (fresh process memory, populated disk) — and require the warm run
to be at least 2x faster while producing identical results.  The
cold/warm table is written to ``benchmarks/results/cache_warmstart.txt``.

The workload is the Figure 10 bisection sweep (whose Jellyfish bar is
dominated by Yen's all-pairs k-shortest enumeration — exactly the
artifact the cache memoizes) plus the Section 8 scaling table with
exact greedy wavelength counts.
"""

import time

from repro.analysis.scaling import scaling_table
from repro.cache import artifact_cache, configure, reset
from repro.core.channels import wavelengths_required
from repro.experiments import figure10_sweep

#: Port counts for the greedy scaling rows (128 ports → a 65-rack ring,
#: the expensive greedy_assignment call).
SCALING_PORTS = (16, 64, 128)


def _workload():
    fig10 = figure10_sweep()
    scale = scaling_table(SCALING_PORTS, method="greedy")
    return fig10, scale


def _timed_run(store: str):
    """One pass over the workload against ``store``, from cold memory."""
    configure(directory=store)
    # Drop the in-process L0 on wavelengths_required: the warm run must
    # go through the artifact cache, not functools.lru_cache.
    wavelengths_required.cache_clear()
    start = time.perf_counter()
    value = _workload()
    elapsed = time.perf_counter() - start
    return value, elapsed, artifact_cache().stats


def _cold_then_warm(store: str):
    cold_value, cold_s, cold_stats = _timed_run(store)
    warm_value, warm_s, warm_stats = _timed_run(store)
    return {
        "cold": (cold_value, cold_s, cold_stats),
        "warm": (warm_value, warm_s, warm_stats),
    }


def bench_cache_warmstart(benchmark, report, bench_record, tmp_path):
    store = str(tmp_path / "store")
    try:
        outcome = benchmark.pedantic(
            _cold_then_warm, args=(store,), rounds=1, iterations=1
        )
    finally:
        reset()

    cold_value, cold_s, cold_stats = outcome["cold"]
    warm_value, warm_s, warm_stats = outcome["warm"]
    speedup = cold_s / warm_s

    lines = [
        "Artifact cache warm-start: Figure 10 sweep + greedy scaling table",
        f"{'phase':<6}{'wall-clock':>12}{'hits':>7}{'misses':>8}"
        f"{'hit rate':>10}{'disk read':>12}{'disk written':>14}",
        "-" * 69,
    ]
    for phase, seconds, stats in (
        ("cold", cold_s, cold_stats),
        ("warm", warm_s, warm_stats),
    ):
        lines.append(
            f"{phase:<6}{seconds:>10.2f} s{stats.hits:>7}{stats.misses:>8}"
            f"{stats.hit_rate:>9.0%}{stats.disk_bytes_read:>11} B"
            f"{stats.disk_bytes_written:>13} B"
        )
    lines.append("")
    lines.append(f"warm speedup: {speedup:.2f}x (acceptance floor: 2x)")
    report("cache_warmstart", "\n".join(lines))
    bench_record(
        cache_cold_seconds=round(cold_s, 3),
        cache_warm_seconds=round(warm_s, 3),
        cache_warm_start_ratio=round(speedup, 3),
    )

    # Identical results, cold or warm — caching must never change output.
    assert warm_value == cold_value
    # Warm runs rebuild nothing: everything comes from the shared store.
    assert warm_stats.misses == 0
    assert warm_stats.hit_rate == 1.0
    assert speedup >= 2.0
