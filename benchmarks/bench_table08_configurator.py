"""Table 8: approximate cost and latency comparison across DC sizes.

Prices every scenario's bill of materials and pairs it with the latency
reductions; asserts the paper's qualitative conclusions — Quartz's cost
premium is modest everywhere, and replacing the core is roughly cost
neutral because big chassis switches are as expensive as a ring's
optics.
"""

from repro.cost import format_table8, table8


def bench_table08(benchmark, report):
    rows = benchmark(table8)

    lines = [format_table8(rows), ""]
    for row in rows:
        lines.append(
            f"{row.datacenter:<8}{row.utilization:<6}premium "
            f"{row.cost_premium * 100:+5.1f}%   (paper: small 7%, medium 13%, "
            "large 0% core / 17% edge+core)"
        )
    report("table08_configurator", "\n".join(lines))

    by_key = {(r.datacenter, r.utilization): r for r in rows}
    # Small DC: single ring carries a single-digit-to-teens premium.
    assert 0.0 <= by_key[("small", "low")].cost_premium <= 0.20
    # Medium DC: Quartz in edge costs more, but bounded.
    assert 0.05 <= by_key[("medium", "low")].cost_premium <= 0.30
    # Large DC, core replacement: roughly cost neutral (paper: $525 = $525).
    assert abs(by_key[("large", "low")].cost_premium) <= 0.10
    # Large DC, edge+core: the biggest premium of the table (paper: 17 %).
    assert by_key[("large", "high")].cost_premium >= by_key[
        ("large", "low")
    ].cost_premium
    # Latency reductions carried through (paper's Table 8 column).
    assert by_key[("large", "high")].latency_reduction >= 0.70
