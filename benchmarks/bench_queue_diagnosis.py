"""Queue diagnosis: telemetry localization scored against ground truth.

Runs the (seed × cut) queue-diagnosis sweep — seeded incast bursts with
and without a mid-burst fibre cut — and scores the telemetry layer's
top-1 port and flow picks against the injected truth.  The PR 7
acceptance gate is precision and recall ≥ 0.9 on both dimensions; the
telemetry-integrity invariants (non-negative occupancy integrals,
gap-free window tiling) are asserted on every cell.
"""

from repro.experiments import (
    format_queue_diagnosis,
    queue_diagnosis_sweep,
    score_diagnosis,
)

GATE = 0.9


def bench_queue_diagnosis(benchmark, report, bench_record):
    def run():
        return queue_diagnosis_sweep(
            seeds=(0, 1, 2, 3, 4),
            cuts=(False, True),
            workers=None,  # all CPUs; bit-identical to serial
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("queue_diagnosis", format_queue_diagnosis(results))

    score = score_diagnosis(results)
    bench_record(
        diagnosis_cells=score.cells,
        diagnosis_port_precision=round(score.port_precision, 3),
        diagnosis_port_recall=round(score.port_recall, 3),
        diagnosis_flow_precision=round(score.flow_precision, 3),
        diagnosis_flow_recall=round(score.flow_recall, 3),
    )

    # Telemetry integrity on every cell, fault churn or not.
    for cell in results:
        assert cell.windows_observed > 0
        assert cell.windows_contiguous, f"window gap/overlap in seed {cell.seed}"
        assert cell.min_flow_occupancy >= 0.0
        # The injected burst must register as microbursts at the
        # culprit port, not just win the occupancy ranking.
        assert cell.bursts_at_culprit > 0
    # The cut cells actually exercised fault churn.
    assert any(c.cut and c.channels_severed > 0 for c in results)

    # Acceptance gate: localization precision/recall ≥ 0.9 for both the
    # culprit port and the culprit flow, micro-averaged over the sweep.
    assert score.port_precision >= GATE, f"port precision {score.port_precision:.2f}"
    assert score.port_recall >= GATE, f"port recall {score.port_recall:.2f}"
    assert score.flow_precision >= GATE, f"flow precision {score.flow_precision:.2f}"
    assert score.flow_recall >= GATE, f"flow recall {score.flow_recall:.2f}"
