"""Ablations of the design choices DESIGN.md calls out.

Four studies, each isolating one decision the paper makes:

1. **Greedy path ordering** (Section 3.1.1): the paper assigns longest
   paths first "to avoid fragmenting the available channels".  Compared
   against shortest-first and random orderings.
2. **Cut-through switching** (Section 2.1.3): the mesh's latency with
   ULL cut-through vs CCS store-and-forward hardware — the rationale
   for building Quartz from cut-through parts.
3. **VLB direct fraction** (Section 3.4): latency of the pathological
   pattern at 50 Gb/s across the k spectrum — too-direct saturates,
   too-indirect wastes latency; the adaptive choice sits at the flat
   bottom.
4. **Multi-ring channel placement** (Section 3.5): wavelength-striped
   vs load-balanced placement of channels onto two parallel fibre
   rings, scored on partition probability under four cuts.
"""

import statistics

from repro.core.channels import greedy_assignment
from repro.core.fault import RingFaultModel
from repro.core.multiring import plan_rings
from repro.experiments.pathological import quartz_core_testbed
from repro.routing import VLBRouter
from repro.sim import Network, PoissonSource
from repro.units import GBPS, usec
import repro.topology as T
from repro.routing import ECMPRouter


def bench_ablation_greedy_ordering(benchmark, report):
    orders = ("longest-first", "shortest-first", "random")

    def run():
        out = {}
        for order in orders:
            counts = [
                greedy_assignment(33, seed=s, order=order).num_channels
                for s in range(5)
            ]
            out[order] = counts
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: greedy path ordering (wavelengths for a 33-ring, 5 seeds)",
        f"{'ordering':<16}{'mean':>8}{'min':>6}{'max':>6}",
        "-" * 36,
    ]
    for order, counts in results.items():
        lines.append(
            f"{order:<16}{statistics.fmean(counts):>8.1f}"
            f"{min(counts):>6}{max(counts):>6}"
        )
    report("ablation_greedy_ordering", "\n".join(lines))

    # The paper's longest-first choice dominates both alternatives.
    assert statistics.fmean(results["longest-first"]) < statistics.fmean(
        results["shortest-first"]
    )
    assert statistics.fmean(results["longest-first"]) <= statistics.fmean(
        results["random"]
    )


def bench_ablation_cut_through(benchmark, report):
    def run():
        out = {}
        for model in ("ULL", "CCS"):
            topo = T.full_mesh(8, 2, switch_model=model)
            net = Network(topo, ECMPRouter(topo))
            source = PoissonSource.at_bandwidth(
                net, "h0.0", "h5.0", 1 * GBPS, group="probe", seed=1
            )
            source.start()
            net.run(until=0.005)
            out[model] = net.stats.summary("probe").mean
        return out

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: switch hardware in the mesh (uncongested, 2 hops)",
        f"{'model':<8}{'mean latency (us)':>19}",
        "-" * 27,
    ]
    for model, mean in means.items():
        lines.append(f"{model:<8}{usec(mean):>19.2f}")
    report("ablation_cut_through", "\n".join(lines))

    # Cut-through removes the 6 µs per store-and-forward hop: with two
    # mesh hops the gap is >10 µs.
    assert means["CCS"] - means["ULL"] > 10e-6


def bench_ablation_vlb_fraction(benchmark, report):
    fractions = (0.1, 0.25, 0.5, 0.72, 0.9, 1.0)
    offered = 50 * GBPS

    def run():
        out = {}
        for k in fractions:
            topo = quartz_core_testbed()
            net = Network(topo, VLBRouter(topo, direct_fraction=k))
            senders = topo.servers_in_rack(0)
            receivers = topo.servers_in_rack(1)
            per_flow = offered / len(senders)
            for i, (src, dst) in enumerate(zip(senders, receivers)):
                PoissonSource.at_bandwidth(
                    net, src, dst, per_flow, group="p", flow_id=i, seed=i,
                    vary_flow_per_packet=True,
                ).start()
            net.run(until=0.003)
            out[k] = net.stats.summary("p").mean
        return out

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: VLB direct fraction k at 50 Gb/s rack-to-rack "
        "(40 G channel)",
        f"{'k':>6}{'mean latency (us)':>19}",
        "-" * 25,
    ]
    for k, mean in means.items():
        lines.append(f"{k:>6.2f}{usec(mean):>19.2f}")
    report("ablation_vlb_fraction", "\n".join(lines))

    # k = 1 (pure ECMP) saturates the direct channel: latency explodes.
    assert means[1.0] > 20 * means[0.72]
    # The adaptive operating point (0.9 × 40/50 = 0.72) is within 2× of
    # the best k in the sweep.
    best = min(means.values())
    assert means[0.72] <= 2 * best


def bench_ablation_ring_placement(benchmark, report):
    def run():
        base = greedy_assignment(33)
        striped = RingFaultModel(33, 2, base)
        balanced = RingFaultModel(
            33, multi_plan=plan_rings(33, num_rings=2, base_plan=base)
        )
        out = {}
        for name, model in (("striped", striped), ("balanced", balanced)):
            stats = model.simulate(4, trials=1500, seed=5)
            out[name] = (stats.bandwidth_loss, stats.partition_probability)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: channel→ring placement, 2 rings, 4 fibre cuts",
        f"{'placement':<12}{'bandwidth loss':>16}{'P(partition)':>14}",
        "-" * 42,
    ]
    for name, (loss, part) in results.items():
        lines.append(f"{name:<12}{loss:>16.3f}{part:>14.4f}")
    report("ablation_ring_placement", "\n".join(lines))

    # Balanced placement never partitions materially more often.
    assert results["balanced"][1] <= results["striped"][1] + 0.005


def bench_ablation_ring_size_invariance(benchmark, report):
    """Paper Section 7: "the size of the ring does not affect performance
    and only affects the size of the DCN"."""

    def run():
        out = {}
        for size in (4, 8, 16):
            topo = T.full_mesh(size, 2)
            net = Network(topo, ECMPRouter(topo))
            # Fixed per-rack load: each rack's first server streams to a
            # server three racks away.
            for rack in range(size):
                PoissonSource.at_bandwidth(
                    net,
                    f"h{rack}.0",
                    f"h{(rack + 3) % size}.1",
                    1 * GBPS,
                    group="probe",
                    flow_id=rack,
                    seed=rack,
                ).start()
            net.run(until=0.005)
            out[size] = net.stats.summary("probe").mean
        return out

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: mesh latency vs ring size (fixed per-rack load)",
        f"{'switches':>9}{'mean latency (us)':>19}",
        "-" * 28,
    ]
    for size, mean in means.items():
        lines.append(f"{size:>9}{usec(mean):>19.3f}")
    report("ablation_ring_size", "\n".join(lines))

    # Latency varies by under 5 % across ring sizes.
    values = list(means.values())
    assert max(values) / min(values) < 1.05
