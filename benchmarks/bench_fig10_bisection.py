"""Figure 10: normalized throughput for three DCN traffic patterns.

Quartz (demand-adaptive VLB over one- and two-hop paths) against full-,
half- and quarter-bisection reference fabrics under random permutation,
incast, and rack-level shuffle.  Asserts the paper's conclusion:
"Quartz's bisection bandwidth is less than full bisection bandwidth but
greater than 1/2", and that Quartz beats the oversubscribed references
on every pattern.
"""

from repro.experiments import figure10_sweep, format_figure10
from repro.textplot import bar_chart


def bench_fig10(benchmark, report):
    results = benchmark(figure10_sweep)
    bars = "\n\n".join(
        bar_chart(
            {
                r.fabric: r.normalized_throughput
                for r in results
                if r.pattern == pattern
            },
            title=pattern,
        )
        for pattern in ("random permutation", "incast", "rack level shuffle")
    )
    report("fig10_bisection", format_figure10(results) + "\n\n" + bars)

    by_key = {(r.fabric, r.pattern): r.normalized_throughput for r in results}
    patterns = ["random permutation", "incast", "rack level shuffle"]
    for pattern in patterns:
        full = by_key[("full bisection", pattern)]
        quartz = by_key[("quartz", pattern)]
        half = by_key[("1/2 bisection", pattern)]
        quarter = by_key[("1/4 bisection", pattern)]
        assert full == max(full, 1.0 - 1e-6)
        # The paper's ordering: full ≳ quartz > 1/2 > 1/4 (quartz may
        # brush full bisection on receiver-limited patterns).
        assert quartz > half
        assert half > quarter
        assert quartz <= full * 1.05
    # Permutation: the paper quotes ~90 % of full bisection.
    assert 0.75 <= by_key[("quartz", "random permutation")] <= 1.0
    # Incast is receiver-NIC-limited, so Quartz is near-ideal.
    assert by_key[("quartz", "incast")] >= 0.85
