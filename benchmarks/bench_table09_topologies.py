"""Table 9: comparison of ~1000-port network structures.

Builds the paper's five candidate design elements at the quoted sizes
and computes every column: no-congestion latency, 64-port switch count,
wiring complexity (cross-rack links), and path diversity.  Asserts the
paper's row values (with documented deviations for BCube's switch
count, which the paper sizes loosely).
"""

import repro.topology as T
from repro.analysis.latency import table9_latency
from repro.topology.metrics import worst_case_hop_profile
from repro.units import usec


def _row(topo, hop_sample=48):
    profile = worst_case_hop_profile(topo, sample=hop_sample)
    return {
        "latency_us": usec(table9_latency(profile)),
        "switch_hops": profile.switch_hops,
        "server_hops": profile.server_relay_hops,
        "switches": T.switch_count(topo),
        "wiring": T.wiring_complexity(topo),
        "diversity": T.path_diversity(topo),
    }


def bench_table09(benchmark, report):
    def build_all():
        return {
            "2-tier tree": _row(T.two_tier_tree(16, 2)),
            "fat-tree (folded Clos)": _row(T.folded_clos(32, 16, 2, 1)),
            "BCube(32,1)": _row(T.bcube(32, 1), hop_sample=24),
            "jellyfish": _row(T.jellyfish(24, 20, 1, seed=1)),
            "mesh (Quartz)": _row(T.full_mesh(33, 1)),
        }

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)

    paper = {
        "2-tier tree": (1.5, 17, 16, 1),
        "fat-tree (folded Clos)": (1.5, 48, 1024, 32),
        "BCube(32,1)": (16.0, 32, 960, 2),
        "jellyfish": (1.5, 24, 240, 32),
        "mesh (Quartz)": (1.0, 33, 528, 32),
    }
    header = (
        f"{'structure':<24}{'lat (us)':>9}{'switches':>9}{'wiring':>8}"
        f"{'divers.':>8}   paper: (lat, sw, wiring, div)"
    )
    lines = ["Table 9: network structures with ~1k ports", header, "-" * len(header)]
    for name, row in rows.items():
        lines.append(
            f"{name:<24}{row['latency_us']:>9.1f}{row['switches']:>9}"
            f"{row['wiring']:>8}{row['diversity']:>8}   {paper[name]}"
        )
    report("table09_topologies", "\n".join(lines))

    # Exact matches to the paper's rows.
    assert rows["2-tier tree"]["latency_us"] == 1.5
    assert rows["2-tier tree"]["switches"] == 17
    assert rows["2-tier tree"]["wiring"] == 16
    assert rows["2-tier tree"]["diversity"] == 1

    assert rows["fat-tree (folded Clos)"]["switches"] == 48
    assert rows["fat-tree (folded Clos)"]["wiring"] == 1024
    assert rows["fat-tree (folded Clos)"]["diversity"] == 32

    assert rows["BCube(32,1)"]["latency_us"] == 16.0  # 2 switch + 1 server hop
    assert rows["BCube(32,1)"]["diversity"] == 2

    assert rows["jellyfish"]["switches"] == 24
    assert rows["jellyfish"]["wiring"] == 240
    assert rows["jellyfish"]["diversity"] <= 32

    assert rows["mesh (Quartz)"]["latency_us"] == 1.0
    assert rows["mesh (Quartz)"]["switches"] == 33
    assert rows["mesh (Quartz)"]["wiring"] == 528
    assert rows["mesh (Quartz)"]["diversity"] == 32
