"""Figure 20: the pathological rack-to-rack concentration pattern.

Flows from the servers of one Quartz switch to receivers on another,
sweeping 10–50 Gb/s aggregate, against a non-blocking core switch.
Asserts the paper's three curves: the core switch is flat but pays its
store-and-forward latency; Quartz/ECMP is several microseconds faster
until the 40 Gb/s channel saturates and then grows without bound;
Quartz/VLB stays low through 50 Gb/s ("no noticeable increase in packet
latency when performing VLB routing").
"""

from repro.experiments import figure20_sweep, format_figure20
from repro.runner import default_workers
from repro.textplot import Series, line_chart
from repro.units import GBPS

#: Sweep cells fan out over this many processes (REPRO_WORKERS to pin);
#: the results are bit-identical to a serial run.
WORKERS = default_workers()


def bench_fig20(benchmark, report):
    results = benchmark.pedantic(
        lambda: figure20_sweep([10, 20, 30, 40, 50], workers=WORKERS),
        rounds=1, iterations=1,
    )
    chart = line_chart(
        [
            Series(
                fabric,
                tuple(
                    (r.offered_load_bps / GBPS, min(r.mean_latency * 1e6, 30.0))
                    for r in series
                ),
            )
            for fabric, series in results.items()
        ],
        x_label="offered load (Gb/s)",
        y_label="us/packet (clipped at 30)",
    )
    report("fig20_pathological", format_figure20(results) + "\n\n" + chart)

    by_load = {
        fabric: {r.offered_load_bps / GBPS: r.mean_latency for r in series}
        for fabric, series in results.items()
    }
    # Non-blocking core: flat, dominated by the 6 µs store-and-forward hop.
    core = by_load["nonblocking"]
    assert core[50] < core[10] * 1.2
    assert core[10] > 6e-6
    # ECMP beats the core switch below saturation...
    for load in (10, 20, 30):
        assert by_load["quartz-ecmp"][load] < core[load] / 3
    # ...then blows past everything once the 40 G channel saturates.
    assert by_load["quartz-ecmp"][50] > 10 * core[50]
    # VLB matches ECMP at low load and stays low through 50 G.
    assert by_load["quartz-vlb"][10] == by_load["quartz-ecmp"][10]
    assert by_load["quartz-vlb"][50] < 2 * by_load["quartz-vlb"][10]
    assert by_load["quartz-vlb"][50] < core[50]
