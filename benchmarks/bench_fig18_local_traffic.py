"""Figure 18: average packet latency, localized traffic patterns.

One task is placed within a window of nearby racks; the remaining tasks
are global cross-traffic; only the local task's packets are measured.
Asserts the paper's findings: structured topologies exploit locality
(the tree's local task avoids the core tier; Quartz keeps it inside one
ring), Jellyfish cannot ("it is unable to take advantage of the traffic
locality" — its localized latency matches its global latency), and the
Quartz variants are the fastest and flattest.
"""

from repro.textplot import line_chart, sweep_to_series
from repro.experiments import (
    figure18_sweep,
    format_sweep,
    run_task_experiment,
)
from repro.runner import default_workers

#: Sweep cells fan out over this many processes (REPRO_WORKERS to pin);
#: the results are bit-identical to a serial run.
WORKERS = default_workers()

TOPOLOGIES = [
    "three-tier tree",
    "jellyfish",
    "quartz in jellyfish",
    "quartz in edge and core",
]

SEEDS = (0, 1, 2, 3)


def _final(series):
    return {topo: points[-1].mean_latency for topo, points in series.items()}


def _assert_paper_shape(series):
    final = _final(series)
    # Quartz keeps local traffic inside one ring: fastest of the roster.
    assert final["quartz in jellyfish"] < final["three-tier tree"]
    assert final["quartz in edge and core"] < final["three-tier tree"]
    # Jellyfish gains nothing from locality: its localized latency is no
    # better than the Quartz variants', which do exploit it.
    assert final["jellyfish"] > final["quartz in jellyfish"]


def bench_fig18a_scatter(benchmark, report):
    series = benchmark.pedantic(
        lambda: figure18_sweep(
            TOPOLOGIES, "scatter", [1, 2, 4, 6], seeds=SEEDS, workers=WORKERS
        ),
        rounds=1, iterations=1,
    )
    report(
        "fig18a_scatter",
        format_sweep(series, "Figure 18(a): localized scatter (us, 4-seed mean)")
        + "\n\n"
        + line_chart(sweep_to_series(series), x_label="tasks", y_label="us/packet"),
    )
    _assert_paper_shape(series)


def bench_fig18b_gather(benchmark, report):
    series = benchmark.pedantic(
        lambda: figure18_sweep(
            TOPOLOGIES, "gather", [1, 2, 4, 6], seeds=SEEDS, workers=WORKERS
        ),
        rounds=1, iterations=1,
    )
    report(
        "fig18b_gather",
        format_sweep(series, "Figure 18(b): localized gather (us, 4-seed mean)"),
    )
    _assert_paper_shape(series)


def bench_fig18c_scatter_gather(benchmark, report):
    series = benchmark.pedantic(
        lambda: figure18_sweep(
            TOPOLOGIES, "scatter_gather", [1, 2, 4], seeds=SEEDS, workers=WORKERS
        ),
        rounds=1, iterations=1,
    )
    report(
        "fig18c_scatter_gather",
        format_sweep(series, "Figure 18(c): localized scatter/gather (us, 4-seed mean)"),
    )
    _assert_paper_shape(series)


def bench_fig18_locality_benefit(benchmark, report):
    """Cross-check of the locality story: localized vs global latency.

    The tree's local task avoids the core tier (large gain); Jellyfish's
    local task sees roughly its global latency (no gain).
    """

    def run():
        out = {}
        for topology in ("three-tier tree", "jellyfish", "quartz in edge and core"):
            global_mean = sum(
                run_task_experiment(topology, "scatter", 1, seed=s).mean_latency
                for s in SEEDS
            ) / len(SEEDS)
            local_mean = sum(
                run_task_experiment(
                    topology, "scatter", 1, localized=True, seed=s
                ).mean_latency
                for s in SEEDS
            ) / len(SEEDS)
            out[topology] = (global_mean, local_mean)
        return out

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Locality benefit: global vs localized single-task latency (us)",
        f"{'topology':<26}{'global':>10}{'local':>10}{'gain':>8}",
        "-" * 54,
    ]
    for topology, (global_mean, local_mean) in gains.items():
        lines.append(
            f"{topology:<26}{global_mean * 1e6:>10.2f}{local_mean * 1e6:>10.2f}"
            f"{global_mean / local_mean:>8.2f}x"
        )
    report("fig18_locality_benefit", "\n".join(lines))

    tree_gain = gains["three-tier tree"][0] / gains["three-tier tree"][1]
    jellyfish_gain = gains["jellyfish"][0] / gains["jellyfish"][1]
    # The tree's local task avoids the core: a substantial gain.
    assert tree_gain > 1.5
    # Jellyfish exploits locality materially less than the tree does.
    assert jellyfish_gain < tree_gain
