"""Hybrid packet/flow engine: accuracy and speedup vs the pure-packet oracle.

Two gates, two scenarios (ISSUE 8 acceptance):

* **Accuracy** — small ring, moderate persistent background (~20 %
  fabric load).  Foreground incast latency under the hybrid residual
  handoff must track the oracle (every background packet simulated):
  mean error ≤ 5 %, p99 error ≤ 50 %.  The tail bound is loose by
  design — the fluid model deliberately erases packet-level background
  burstiness, which is most of what the oracle's p99 is made of (see
  the accuracy caveats in API.md).
* **Speedup** — matched mid-size ring, heavy long-lived background
  (the regime the hybrid engine exists for: many packets per epoch).
  Hybrid wall-clock must beat the oracle's ≥ 5×; measured headroom is
  ~2× on top of the gate.

Both scenario's metrics land in BENCH_simulator.json so regressions in
either the solver's epoch cost or the residual handoff's fidelity show
up as number drift, not just pass/fail.
"""

from repro.experiments import run_hybrid_scale_cell

#: Foreground-latency error bounds vs the oracle (accuracy scenario).
MEAN_ERR_GATE = 0.05
P99_ERR_GATE = 0.50
#: Minimum hybrid-over-oracle wall-clock ratio (speedup scenario).
SPEEDUP_GATE = 5.0

ACCURACY_SCENARIO = dict(
    fabric="quartz-ring-small",
    n_background=40,
    fg_fan=4,
    bg_demand_bps=5e8,
    duration=2e-2,
    bg_mean_duration=1e-2,
    seed=0,
)
SPEEDUP_SCENARIO = dict(
    fabric="quartz-ring-mid",
    n_background=300,
    fg_fan=8,
    bg_demand_bps=2e9,
    duration=3e-2,
    bg_mean_duration=1.5e-2,
    seed=0,
)


def _relative_error(hybrid, oracle):
    return abs(hybrid - oracle) / oracle


def bench_hybrid_scale(benchmark, report, bench_record):
    def run():
        cells = {}
        for name, scenario in (
            ("accuracy", ACCURACY_SCENARIO),
            ("speedup", SPEEDUP_SCENARIO),
        ):
            cells[name] = {
                mode: run_hybrid_scale_cell(mode=mode, **scenario)
                for mode in ("hybrid", "oracle")
            }
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    acc_h, acc_o = cells["accuracy"]["hybrid"], cells["accuracy"]["oracle"]
    spd_h, spd_o = cells["speedup"]["hybrid"], cells["speedup"]["oracle"]
    mean_err = _relative_error(acc_h.fg_mean, acc_o.fg_mean)
    p99_err = _relative_error(acc_h.fg_p99, acc_o.fg_p99)
    speedup = spd_o.wall_clock_s / spd_h.wall_clock_s

    lines = [
        "Hybrid engine vs pure-packet oracle",
        f"accuracy scenario ({acc_h.fabric}, {acc_h.n_background} bg flows):",
        f"  fg mean  hybrid {acc_h.fg_mean * 1e6:8.2f} us"
        f"  oracle {acc_o.fg_mean * 1e6:8.2f} us  err {mean_err:.3f}",
        f"  fg p99   hybrid {acc_h.fg_p99 * 1e6:8.2f} us"
        f"  oracle {acc_o.fg_p99 * 1e6:8.2f} us  err {p99_err:.3f}"
        f"  (advisory, gate <= {P99_ERR_GATE:.2f})",
        "  p99 error is advisory by design: the oracle's tail is mostly",
        "  background packet burstiness, which the fluid model removes;",
        "  the mean is work-conserving, the variance is not (API.md).",
        f"speedup scenario ({spd_h.fabric}, {spd_h.n_background} bg flows):",
        f"  wall     hybrid {spd_h.wall_clock_s:8.2f} s "
        f"  oracle {spd_o.wall_clock_s:8.2f} s   speedup {speedup:.1f}x",
        f"  epochs   {spd_h.epochs} ({spd_h.residual_epochs} residual)"
        f"  oracle packets {spd_o.packets_delivered}",
    ]
    report("hybrid_scale", "\n".join(lines))

    bench_record(
        hybrid_fg_mean_rel_err=round(mean_err, 4),
        hybrid_fg_p99_rel_err=round(p99_err, 4),
        hybrid_speedup_vs_oracle=round(speedup, 2),
        hybrid_accuracy_fg_mean_us=round(acc_h.fg_mean * 1e6, 3),
        hybrid_oracle_fg_mean_us=round(acc_o.fg_mean * 1e6, 3),
        hybrid_speedup_wall_s=round(spd_h.wall_clock_s, 3),
        hybrid_oracle_wall_s=round(spd_o.wall_clock_s, 3),
        hybrid_scale_epochs=spd_h.epochs,
        hybrid_scale_residual_epochs=spd_h.residual_epochs,
    )

    # Sanity on the scenarios themselves before gating on them.
    assert acc_h.foreground.count > 0 and acc_o.foreground.count > 0
    assert spd_h.epochs > 0 and spd_h.residual_epochs > 0
    assert spd_o.packets_delivered > spd_h.packets_delivered  # oracle pays

    # Acceptance gates (ISSUE 8).
    assert mean_err <= MEAN_ERR_GATE, f"fg mean error {mean_err:.3f}"
    assert p99_err <= P99_ERR_GATE, f"fg p99 error {p99_err:.3f}"
    assert speedup >= SPEEDUP_GATE, f"speedup {speedup:.1f}x"
