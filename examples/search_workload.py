#!/usr/bin/env python3
"""Search-engine workload: partition/aggregate queries and short-flow FCTs.

Scenario: the paper motivates Quartz with interactive services — "a
wide-area request may trigger hundreds of message exchanges inside a
datacenter."  This script measures that workload directly:

1. closed-loop partition/aggregate queries (front-end → 2 aggregators →
   4 workers each) on the three-tier tree vs Quartz in edge+core, with
   and without bursty background traffic, reporting mean and p99 query
   completion times;
2. flow-completion times of a short-flow burst (fluid model) on a
   Quartz mesh under direct-only ECMP vs multipath VLB when two racks
   exchange a shuffle.

Run:  python examples/search_workload.py
"""

from repro.experiments.section7 import TOPOLOGY_BUILDERS
from repro.flowsim import FCTSimulator, TimedFlow, mean_fct
from repro.routing import ECMPRouter, VLBRouter
from repro.sim import BurstSource, Network
from repro.topology import full_mesh
from repro.units import GBPS, MBPS, usec
from repro.workloads import PartitionAggregateQuery, spread_query_tree


def query_study() -> None:
    print("Partition/aggregate queries (2 aggregators × 4 workers, 100 queries)")
    header = (
        f"{'architecture':<26}{'quiet mean':>12}{'quiet p99':>11}"
        f"{'busy mean':>11}{'busy p99':>10}   (us)"
    )
    print(header)
    print("-" * len(header))
    for name in ("three-tier tree", "quartz in edge and core"):
        row = [name]
        for busy in (False, True):
            topo = TOPOLOGY_BUILDERS[name]()
            net = Network(topo, ECMPRouter(topo))
            tree = spread_query_tree(topo, 2, 4, seed=7)
            job = PartitionAggregateQuery(net, tree, num_queries=100, group="q")
            job.start()
            if busy:
                servers = topo.servers()
                participants = {tree.frontend}
                for agg, workers in tree.workers_by_aggregator.items():
                    participants.add(agg)
                    participants.update(workers)
                idle = [s for s in servers if s not in participants]
                for i in range(0, min(16, len(idle) - 1), 2):
                    BurstSource(
                        net, idle[i], idle[i + 1],
                        target_bandwidth_bps=500 * MBPS,
                        group="cross", flow_id=100 + i, seed=i,
                    ).start()
            net.run(until=5.0)
            summary = net.stats.summary("q")
            row.extend([usec(summary.mean), usec(summary.p99)])
        print(
            f"{row[0]:<26}{row[1]:>12.2f}{row[2]:>11.2f}{row[3]:>11.2f}{row[4]:>10.2f}"
        )
    print()


def fct_study() -> None:
    print("Short-flow FCTs during a rack-to-rack shuffle (fluid model)")
    topo = full_mesh(8, 4, link_rate=10 * GBPS)
    # Background: rack 0 shuffles 100 MB to rack 1 on every server pair;
    # probes: 1 MB short flows between the same racks.
    flows = []
    for i in range(4):
        flows.append(TimedFlow(i, f"h0.{i}", f"h1.{i}", 100e6, arrival=0.0))
    for i in range(4):
        flows.append(TimedFlow(10 + i, f"h0.{i}", f"h1.{(i + 1) % 4}", 1e6,
                               arrival=0.01 * (i + 1)))

    for label, router, multipath in (
        ("ECMP (direct only)", ECMPRouter(topo), False),
        ("VLB (multipath)", VLBRouter(topo, 0.5), True),
    ):
        done = FCTSimulator(topo, router, multipath=multipath).run(flows)
        shorts = [c for c in done if c.flow_id >= 10]
        longs = [c for c in done if c.flow_id < 10]
        print(
            f"  {label:<20} short-flow mean FCT {mean_fct(shorts) * 1e3:7.2f} ms, "
            f"shuffle mean FCT {mean_fct(longs) * 1e3:8.2f} ms"
        )
    print(
        "\nVLB's two-hop spill multiplies the rack-pair bandwidth, draining the"
        "\nshuffle faster and getting short flows out from behind it."
    )


def main() -> None:
    query_study()
    fct_study()


if __name__ == "__main__":
    main()
