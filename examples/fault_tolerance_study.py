#!/usr/bin/env python3
"""Fault-tolerance study: how many parallel fibre rings does a pod need?

Scenario: an operator deploying a 33-switch Quartz element (which needs
two 80-channel WDMs per switch anyway) wants to know what each extra
fibre ring buys in resilience.  Reproduces the Figure 6 analysis:
bandwidth loss and partition probability under 1–4 simultaneous fibre
cuts, for 1–4 parallel rings, plus an exact (exhaustively enumerated)
cross-check on a small ring.

Run:  python examples/fault_tolerance_study.py
"""

from repro.core.channels import greedy_assignment
from repro.core.fault import RingFaultModel


def main() -> None:
    ring_size = 33
    plan = greedy_assignment(ring_size)
    print(f"Quartz element: {ring_size} switches, {plan.num_channels} wavelengths\n")

    header = f"{'rings':>6}{'failures':>9}{'bandwidth loss':>16}{'P(partition)':>14}"
    print(header)
    print("-" * len(header))
    for rings in (1, 2, 3, 4):
        model = RingFaultModel(ring_size, rings, plan)
        for failures in (1, 2, 4):
            stats = model.simulate(failures, trials=600, seed=1)
            print(
                f"{rings:>6}{failures:>9}{stats.bandwidth_loss:>15.1%}"
                f"{stats.partition_probability:>14.4f}"
            )
        print()

    print("Reading the table:")
    one = RingFaultModel(ring_size, 1, plan).simulate(1, trials=600, seed=1)
    four = RingFaultModel(ring_size, 4, plan).simulate(1, trials=600, seed=1)
    print(
        f"  One fibre cut costs {one.bandwidth_loss:.0%} of direct channels on a "
        f"single ring, {four.bandwidth_loss:.0%} with four rings."
    )
    two = RingFaultModel(ring_size, 2, plan).simulate(4, trials=2000, seed=1)
    print(
        f"  With two rings, even four simultaneous cuts partition the mesh "
        f"with probability {two.partition_probability:.4f} (paper: 0.0024)."
    )

    # Exact enumeration sanity check on a small ring.
    small = RingFaultModel(8, 1)
    exact = small.exact_partition_probability(2)
    sampled = small.simulate(2, trials=3000, seed=2).partition_probability
    print(
        f"\nCross-check (8-switch ring, 2 cuts): exact P = {exact:.4f}, "
        f"Monte-Carlo P = {sampled:.4f}"
    )


if __name__ == "__main__":
    main()
