#!/usr/bin/env python3
"""Latency study: a search-style fan-out on five DCN architectures.

Scenario: a web-search cluster issues scatter/gather fan-outs (one
frontend queries every backend, all backends reply) — the paper's
motivating workload.  This script runs the same fan-out on the five
Section 7 architectures, with and without background cross-traffic, and
reports per-packet latency; then shows the Figure 20 effect: what
happens when traffic concentrates between two racks under ECMP vs VLB.

Run:  python examples/latency_study.py   (takes ~1 minute)
"""

from repro.experiments import (
    figure20_sweep,
    format_figure20,
    run_task_experiment,
)
from repro.units import usec


def main() -> None:
    topologies = [
        "three-tier tree",
        "quartz in core",
        "quartz in edge",
        "quartz in edge and core",
        "jellyfish",
    ]

    print("Search-style scatter/gather fan-out, mean per-packet latency")
    header = f"{'architecture':<26}{'quiet (us)':>12}{'busy (us)':>12}{'p99 busy':>10}"
    print(header)
    print("-" * len(header))
    baseline = {}
    for topology in topologies:
        quiet = run_task_experiment(topology, "scatter_gather", 1, seed=3)
        busy = run_task_experiment(topology, "scatter_gather", 4, seed=3)
        baseline[topology] = busy.mean_latency
        print(
            f"{topology:<26}{usec(quiet.mean_latency):>12.2f}"
            f"{usec(busy.mean_latency):>12.2f}{usec(busy.summary.p99):>10.2f}"
        )

    tree = baseline["three-tier tree"]
    best = baseline["quartz in edge and core"]
    print(
        f"\nQuartz in edge and core cuts the busy fan-out latency by "
        f"{(1 - best / tree) * 100:.0f}% vs the three-tier tree "
        "(the paper reports ~50% in typical scenarios).\n"
    )

    # The concentration stress test (Section 7.2): when one rack talks
    # mostly to one other rack, direct-only routing saturates a single
    # channel; VLB spreads the excess over two-hop detours.
    print(format_figure20(figure20_sweep([10, 30, 50])))


if __name__ == "__main__":
    main()
