#!/usr/bin/env python3
"""Incremental deployment: growing a Quartz pod without a forklift.

Scenario (paper Section 8): "Quartz … can be incrementally deployed as
needed … switches and WDMs can be added as needed."  A pod starts at 8
racks and grows to 24 in steps.  Each step inserts switches into the
physical ring; already-deployed transceivers are tuned to fixed
wavelengths, so the expansion planner preserves existing channels where
possible and reports exactly which pairs must be re-tuned.

The script also exports the final plan as the JSON document a
manufacturer would use for factory cabling ("wavelength planning and
switch to DWDM cabling can be performed by the device manufacturer at
the factory").

Run:  python examples/incremental_expansion.py
"""

from repro.core import expand_plan, greedy_assignment, plan_to_json
from repro.core.channels import FIBER_CHANNEL_LIMIT
from repro.cost import quartz_ring_bom


def main() -> None:
    plan = greedy_assignment(8)
    print(f"Initial pod: 8 racks, {plan.num_channels} wavelengths\n")

    header = (
        f"{'growth':>12}{'λ used':>8}{'kept':>6}{'retuned':>9}"
        f"{'new pairs':>11}{'switch cost Δ':>15}"
    )
    print(header)
    print("-" * len(header))
    previous_cost = quartz_ring_bom(8, servers=0, include_server_cables=False).total_cost()
    for target in (12, 16, 20, 24):
        result = expand_plan(plan, target)
        cost = quartz_ring_bom(
            target, servers=0, include_server_cables=False
        ).total_cost()
        print(
            f"{plan.ring_size:>5} → {target:<5}{result.plan.num_channels:>8}"
            f"{len(result.preserved):>6}{len(result.retuned):>9}"
            f"{len(result.added):>11}{'$' + format(cost - previous_cost, ',.0f'):>15}"
        )
        plan = result.plan
        previous_cost = cost

    fresh = greedy_assignment(24)
    print(
        f"\nIncremental plan uses {plan.num_channels} wavelengths; planning the "
        f"24-rack pod from scratch would use {fresh.num_channels} "
        f"(both fit the {FIBER_CHANNEL_LIMIT}-channel fibre)."
    )

    document = plan_to_json(plan, indent=2)
    print(
        f"\nFactory cabling document: {len(document.splitlines())} lines of JSON, "
        "first entries:"
    )
    for line in document.splitlines()[:10]:
        print(" ", line)
    print("  ...")


if __name__ == "__main__":
    main()
