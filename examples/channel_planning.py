#!/usr/bin/env python3
"""Channel planning study: wavelength budgets for a Quartz pod.

Scenario: you are sizing the WDM gear for Quartz pods of various rack
counts.  For each candidate size this script reports the wavelengths the
greedy planner needs, how that compares to the exact ILP optimum (small
rings) and the link-load lower bound, the number of parallel fibre rings
and WDM muxes required, and the amplifier budget from the optical power
analysis (Section 3.3).

Run:  python examples/channel_planning.py
"""

from repro.core import channels, optical
from repro.core.channels import FIBER_CHANNEL_LIMIT, WDM_CHANNEL_LIMIT


def main() -> None:
    print("Quartz pod wavelength planning")
    print(
        f"(fibre supports {FIBER_CHANNEL_LIMIT} channels, one WDM mux "
        f"{WDM_CHANNEL_LIMIT}; ILP solved exactly up to 9 racks)\n"
    )
    header = (
        f"{'racks':>6}{'greedy λ':>10}{'ILP λ':>8}{'bound':>7}"
        f"{'fibre rings':>12}{'amplifiers':>11}"
    )
    print(header)
    print("-" * len(header))
    for racks in (4, 6, 8, 9, 12, 16, 24, 33, 35):
        plan = channels.greedy_assignment(racks)
        plan.validate()
        ilp = channels.ilp_assignment(racks).num_channels if racks <= 9 else None
        rings = channels.rings_needed(racks)
        amps = optical.amplifiers_required(racks) * rings
        ilp_cell = f"{ilp:>8}" if ilp is not None else f"{'—':>8}"
        print(
            f"{racks:>6}{plan.num_channels:>10}{ilp_cell}"
            f"{channels.lower_bound(racks):>7}{rings:>12}{amps:>11}"
        )

    print()
    largest = channels.max_ring_size(FIBER_CHANNEL_LIMIT)
    print(f"Largest ring within one fibre's {FIBER_CHANNEL_LIMIT} channels: {largest} racks")

    # The optical budget behind the amplifier column (Section 3.3).
    hops = optical.max_unamplified_wdm_hops()
    spacing = optical.amplifier_spacing_switches()
    print(
        f"Power budget: {optical.Transceiver().power_budget_db:.0f} dB → a channel "
        f"crosses {hops} DWDMs unamplified → one amplifier per {spacing} switches"
    )
    trace = optical.trace_channel(12)
    print(
        f"A 12-hop channel bottoms out at {trace.min_power_dbm:.1f} dBm "
        f"(receiver sensitivity −15 dBm): {'OK' if trace.feasible else 'FAILS'}"
    )


if __name__ == "__main__":
    main()
