#!/usr/bin/env python3
"""Quickstart: build the paper's canonical Quartz element and use it.

Walks through the core API in five steps:

1. configure the 1056-port Quartz element (33 × 64-port switches),
2. plan its wavelengths and check the optical power budget,
3. materialize the logical full-mesh topology,
4. route with ECMP (always the direct channel) and VLB,
5. simulate a latency-sensitive exchange and print the latency.

Run:  python examples/quickstart.py
"""

from repro.core import QuartzRing
from repro.routing import ECMPRouter, VLBRouter
from repro.sim import Network, RPCSource
from repro.units import usec


def main() -> None:
    # 1. The paper's reference design element: 64-port cut-through
    #    switches split 32 server ports / 32 mesh ports.
    ring = QuartzRing.from_switch_ports(64)
    ring.validate()
    print("Element:", ring.summary())

    # 2. Wavelength plan (greedy heuristic, Section 3.1) and optics.
    plan = ring.channel_plan()
    plan.validate()
    print(
        f"Wavelengths: {plan.num_channels} channels over "
        f"{ring.physical_rings} fibre ring(s); "
        f"{ring.amplifiers_required} amplifiers keep the budget closed"
    )
    example = plan.assignment_for(0, 16)
    print(
        f"Racks 0 and 16 talk on wavelength #{example.channel}, an arc of "
        f"{example.length} fibre segments"
    )

    # 3. The logical topology: a full mesh of ToR switches.  Attach two
    #    servers per rack to keep the demo small.
    topo = ring.to_topology(servers_per_switch=2)
    print("Topology:", topo.summary())

    # 4. Routing: ECMP always picks the one-hop channel; VLB can detour.
    ecmp = ECMPRouter(topo)
    vlb = VLBRouter(topo, direct_fraction=0.5)
    direct = ecmp.route("h0.0", "h16.0")
    print(f"ECMP path rack 0 → rack 16: {' → '.join(direct)}")
    print(f"VLB offers {len(vlb.paths('h0.0', 'h16.0'))} paths (1 direct + detours)")

    # 5. A 1000-call RPC ping-pong across the mesh.
    net = Network(topo, ecmp)
    rpc = RPCSource(net, "h0.0", "h16.0", num_calls=1000, group="rpc")
    rpc.start()
    net.run()
    summary = net.stats.summary("rpc")
    print(
        f"RPC round-trip over the mesh: mean {usec(summary.mean):.2f} us, "
        f"p99 {usec(summary.p99):.2f} us ({summary.count} calls)"
    )


if __name__ == "__main__":
    main()
