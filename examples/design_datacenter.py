#!/usr/bin/env python3
"""Datacenter design study: where should Quartz go in *your* DCN?

Scenario: a provider weighs the cost of introducing Quartz against its
latency benefit at three scales (the paper's Table 8 / Section 4.4
configurator), then drills into the small-DC case: what a 500-server
deployment pays per server, itemized, and how sensitive the verdict is
to DWDM transceiver price (the component the paper expects to keep
falling — Figure 1).

Run:  python examples/design_datacenter.py
"""

import math

from repro.cost import (
    DEFAULT_PRICES,
    PriceList,
    format_table8,
    quartz_ring_bom,
    recommend,
    table8,
    two_tier_tree_bom,
)


def main() -> None:
    # The full Table 8 sweep.
    rows = table8()
    print(format_table8(rows))
    print()
    for row in rows:
        verdict = "worth it" if row.cost_premium < row.latency_reduction else "judgment call"
        print(
            f"{row.datacenter:<8}{row.utilization:<6}"
            f"premium {row.cost_premium * 100:+5.1f}% for "
            f"-{row.latency_reduction * 100:.0f}% latency  → {verdict}"
        )

    # Itemized small-DC comparison.
    servers = 500
    tree = two_tier_tree_bom(servers)
    ring = quartz_ring_bom(math.ceil(servers / 32), servers)
    print(f"\nItemized bill for {servers} servers ($/unit × count):")
    for name, bom in (("two-tier tree", tree), ("Quartz ring", ring)):
        print(f"  {name}: ${bom.total_cost():,.0f} total, "
              f"${bom.cost_per_server(servers):,.0f}/server")
        for item, count in sorted(bom.items.items()):
            unit = getattr(DEFAULT_PRICES, item)
            print(f"    {item:<22}{count:>6} × ${unit:>9,.0f} = ${unit * count:>11,.0f}")

    # Sensitivity: the Quartz premium vs DWDM transceiver price.
    print("\nSensitivity: small-DC Quartz premium vs DWDM transceiver price")
    for price in (50, 150, 350, 700, 1400):
        prices = PriceList(dwdm_transceiver=float(price))
        row = table8(prices=prices)[0]
        print(f"  ${price:>5}/transceiver → premium {row.cost_premium * 100:+6.1f}%")

    # The configurator as a decision: what should *this* DC deploy?
    print("\nRecommendations (cheapest option meeting a latency target):")
    for servers, target in ((500, 0.3), (100_000, 0.6), (100_000, 0.72)):
        rec = recommend(servers, latency_reduction_target=target)
        print(
            f"  {servers:>7} servers, need ≥{target:.0%} reduction → "
            f"{rec.chosen.name} (${rec.chosen.cost_per_server:,.0f}/server, "
            f"premium {rec.premium_over_baseline * 100:+.0f}%)"
        )


if __name__ == "__main__":
    main()
