# Convenience targets for the Quartz reproduction.

PYTHON ?= python

.PHONY: install test bench bench-trajectory examples smoke smoke-update \
	smoke-telemetry smoke-telemetry-update smoke-cached lint ci all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Append the current BENCH_simulator.json snapshot to the committed
# perf trajectory (one JSON line per measured tree; view it with
# `python -m repro trajectory`).
bench-trajectory:
	PYTHONPATH=src $(PYTHON) benchmarks/append_trajectory.py

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

# Benchmark smoke: seeded cells diffed against tests/golden/ (the CI
# benchmark-smoke job).  `make smoke-update` regenerates the golden
# after an intentional metric change.
smoke:
	PYTHONPATH=src $(PYTHON) -m repro smoke --check

smoke-update:
	PYTHONPATH=src $(PYTHON) -m repro smoke --update

# Telemetry-enabled smoke: the same cells with monitors armed (their
# metrics must not move — telemetry is strictly observational) plus a
# queue-diagnosis cell, against the _telemetry golden.  The per-window
# JSON lands in telemetry-windows.json for the CI artifact upload.
smoke-telemetry:
	PYTHONPATH=src $(PYTHON) -m repro smoke --check --telemetry \
		--dump-windows telemetry-windows.json

smoke-telemetry-update:
	PYTHONPATH=src $(PYTHON) -m repro smoke --update --telemetry \
		--dump-windows telemetry-windows.json

# Lint with ruff when it is installed; skip gracefully when it is not
# (CI always installs it, local environments may not).
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Benchmark smoke through a shared artifact store, cold then warm —
# both runs must match the same golden (the cache may not change any
# metric).  Stats from the warm run are printed for inspection.
smoke-cached:
	rm -rf .repro-cache-ci
	REPRO_CACHE_DIR=.repro-cache-ci PYTHONPATH=src $(PYTHON) -m repro smoke --check
	REPRO_CACHE_DIR=.repro-cache-ci PYTHONPATH=src $(PYTHON) -m repro smoke --check
	REPRO_CACHE_DIR=.repro-cache-ci PYTHONPATH=src $(PYTHON) -m repro cache stats
	rm -rf .repro-cache-ci

# Mirror the CI pipeline locally: tests, lint, benchmark smoke
# (cold and warm against one artifact store).
ci:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(MAKE) lint
	$(MAKE) smoke-cached
	$(MAKE) smoke-telemetry

all: install test bench
