# Convenience targets for the Quartz reproduction.

PYTHON ?= python

.PHONY: install test bench examples smoke smoke-update lint ci all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

# Benchmark smoke: seeded cells diffed against tests/golden/ (the CI
# benchmark-smoke job).  `make smoke-update` regenerates the golden
# after an intentional metric change.
smoke:
	PYTHONPATH=src $(PYTHON) -m repro smoke --check

smoke-update:
	PYTHONPATH=src $(PYTHON) -m repro smoke --update

# Lint with ruff when it is installed; skip gracefully when it is not
# (CI always installs it, local environments may not).
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Mirror the CI pipeline locally: tests, lint, benchmark smoke.
ci:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(MAKE) lint
	$(MAKE) smoke

all: install test bench
