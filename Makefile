# Convenience targets for the Quartz reproduction.

.PHONY: install test bench examples all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

all: install test bench
