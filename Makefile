# Convenience targets for the Quartz reproduction.

PYTHON ?= python

.PHONY: install test bench examples smoke smoke-update smoke-cached lint ci all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

# Benchmark smoke: seeded cells diffed against tests/golden/ (the CI
# benchmark-smoke job).  `make smoke-update` regenerates the golden
# after an intentional metric change.
smoke:
	PYTHONPATH=src $(PYTHON) -m repro smoke --check

smoke-update:
	PYTHONPATH=src $(PYTHON) -m repro smoke --update

# Lint with ruff when it is installed; skip gracefully when it is not
# (CI always installs it, local environments may not).
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Benchmark smoke through a shared artifact store, cold then warm —
# both runs must match the same golden (the cache may not change any
# metric).  Stats from the warm run are printed for inspection.
smoke-cached:
	rm -rf .repro-cache-ci
	REPRO_CACHE_DIR=.repro-cache-ci PYTHONPATH=src $(PYTHON) -m repro smoke --check
	REPRO_CACHE_DIR=.repro-cache-ci PYTHONPATH=src $(PYTHON) -m repro smoke --check
	REPRO_CACHE_DIR=.repro-cache-ci PYTHONPATH=src $(PYTHON) -m repro cache stats
	rm -rf .repro-cache-ci

# Mirror the CI pipeline locally: tests, lint, benchmark smoke
# (cold and warm against one artifact store).
ci:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(MAKE) lint
	$(MAKE) smoke-cached

all: install test bench
